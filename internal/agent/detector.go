package agent

import (
	"fmt"
	"math/rand"

	"github.com/harpnet/harp/internal/coap"
	"github.com/harpnet/harp/internal/obs"
	"github.com/harpnet/harp/internal/proto"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
	"github.com/harpnet/harp/internal/vclock"
)

// DetectorNet is the transport view the failure detector needs: background
// keepalive probes and the scripted crash state. transport.Bus satisfies it.
type DetectorNet interface {
	SendBackground(from, to topology.NodeID, msg coap.Message) error
	Crashed(id topology.NodeID) bool
}

// DetectorConfig parameterises the failure detector. All durations are in
// slots (the virtual-time unit).
type DetectorConfig struct {
	// Interval is the keepalive/sweep period. Each sweep every live node
	// probes its parent and children, then silence is judged against the
	// thresholds below.
	Interval float64
	// SuspectAfter is the silence after which a node turns suspect.
	SuspectAfter float64
	// DeadAfter is the silence after which a suspect is declared dead and
	// its orphans are adopted. Scripted outages shorter than this ride out
	// undetected (CON retransmission already covers them).
	DeadAfter float64
	// AbortAfter is the adjustment watchdog deadline: an in-flight
	// escalation older than this is aborted and rolled back. Zero disables
	// the watchdog. Must comfortably exceed the worst-case grant latency
	// (including the transport's ~62-slotframe CON give-up backoff) or
	// healthy adjustments get aborted.
	AbortAfter float64
	// Seed drives the sweep jitter stream (vclock.StreamDetector).
	Seed int64
	// Demand returns the link demands the fleet should converge to after
	// re-homing moved under newParent — computed over a clone of the tree
	// with the move applied, since the detector calls it before rewiring.
	// A (None, None) call asks for the demands of the current tree (used
	// when a readmitted node restarts under its unchanged parent).
	Demand func(moved, newParent topology.NodeID) *traffic.Demand
	// Tracer and Metrics are the detector's observability sinks (nil-safe).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// DefaultDetectorConfig returns the standard thresholds for a slotframe
// length: sweep every slotframe, suspect after 3, declare dead after 6,
// abort stale adjustments after 80 (past the CON give-up backoff, so the
// watchdog only catches the ACKed-then-died hang the transport never
// times out on).
func DefaultDetectorConfig(slotframeSlots int) DetectorConfig {
	sf := float64(slotframeSlots)
	return DetectorConfig{
		Interval:     sf,
		SuspectAfter: 3 * sf,
		DeadAfter:    6 * sf,
		AbortAfter:   80 * sf,
	}
}

// DeathRecord is one dead declaration.
type DeathRecord struct {
	Node        topology.NodeID
	SuspectedAt float64
	DeclaredAt  float64
}

// AdoptionRecord is one orphan re-homing.
type AdoptionRecord struct {
	Orphan     topology.NodeID
	DeadParent topology.NodeID
	NewParent  topology.NodeID
	At         float64
}

type liveness uint8

const (
	liveAlive liveness = iota
	liveSuspect
	liveDead
)

// Detector is the virtual-time failure detector: a periodic sweep sends
// keepalives on behalf of every live node (to its parent and children),
// watches global last-heard times, and drives silence through a
// suspect → dead state machine. A death triggers orphan adoption through
// Fleet.Adopt; a node heard again after its death is readmitted through
// the restart/adoption machinery. The sweep also runs the adjustment
// watchdog (Node.abortStale) on live nodes.
//
// The paper's testbed announces failures to the experiment harness; here
// Bus.Crash is silent and outages are *discovered* from missing traffic,
// as a deployment would. The detector is centralized over one fleet —
// the global last-heard map stands in for per-neighbour timers, which
// makes network partitions invisible (a partitioned node keeps its
// global liveness through any reachable neighbour; partitions shorter
// than DeadAfter are ridden out by CON retransmission). Link flaps that
// isolate a node completely for longer than DeadAfter cause an honest
// false positive, healed by readmission when the link returns.
//
// All state transitions happen inside clock events, so the detector
// needs no lock of its own; it must only be driven through the shared
// virtual clock (Bus, CoSim).
type Detector struct {
	fleet *Fleet
	net   DetectorNet
	clock *vclock.Clock
	cfg   DetectorConfig
	rng   *rand.Rand

	lastHeard   map[topology.NodeID]float64
	state       map[topology.NodeID]liveness
	suspectedAt map[topology.NodeID]float64
	msgID       uint16
	stopped     bool
	timer       *vclock.Handle

	// Deaths, Adoptions and Readmissions record what the detector did, in
	// declaration order. They survive Bus.ResetCounters (which wipes the
	// metrics registry at every adjustment trigger).
	Deaths       []DeathRecord
	Adoptions    []AdoptionRecord
	Readmissions int
	// Aborts counts watchdog rollbacks across all sweeps.
	Aborts int

	errs []error
}

// NewDetector builds a detector over a deployed fleet. Call Start after
// the static phase has drained — the recurring sweep would keep
// Bus.Run/Clock.Run from ever finishing.
func NewDetector(f *Fleet, net DetectorNet, clock *vclock.Clock, cfg DetectorConfig) (*Detector, error) {
	if cfg.Interval <= 0 || cfg.SuspectAfter <= 0 || cfg.DeadAfter <= cfg.SuspectAfter {
		return nil, fmt.Errorf("agent: detector thresholds invalid (interval %v, suspect %v, dead %v)",
			cfg.Interval, cfg.SuspectAfter, cfg.DeadAfter)
	}
	if cfg.Demand == nil {
		return nil, fmt.Errorf("agent: detector needs a demand provider")
	}
	return &Detector{
		fleet:       f,
		net:         net,
		clock:       clock,
		cfg:         cfg,
		rng:         vclock.NewStream(vclock.StreamDetector, cfg.Seed),
		lastHeard:   make(map[topology.NodeID]float64),
		state:       make(map[topology.NodeID]liveness),
		suspectedAt: make(map[topology.NodeID]float64),
	}, nil
}

// Start wires the liveness hooks into every agent and schedules the first
// sweep. Every node starts alive and freshly heard.
func (d *Detector) Start() {
	now := d.clock.Now()
	heard := func(from topology.NodeID) { d.lastHeard[from] = d.clock.Now() }
	vnow := d.clock.Now
	for _, id := range d.fleet.Tree.Nodes() {
		d.fleet.node(id).setLiveness(heard, vnow)
		d.lastHeard[id] = now
		d.state[id] = liveAlive
	}
	d.stopped = false
	d.scheduleSweep()
}

// Stop unwires the hooks and cancels the pending sweep; the clock can
// drain again.
func (d *Detector) Stop() {
	d.stopped = true
	if d.timer != nil {
		d.timer.Cancel()
		d.timer = nil
	}
	for _, id := range d.fleet.Tree.Nodes() {
		d.fleet.node(id).setLiveness(nil, nil)
	}
}

// Err returns the first error any sweep's recovery action hit, if any.
func (d *Detector) Err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return d.errs[0]
}

// Dead reports whether the detector currently considers a node dead.
func (d *Detector) Dead(id topology.NodeID) bool { return d.state[id] == liveDead }

// Suspected reports whether the detector currently suspects a node.
func (d *Detector) Suspected(id topology.NodeID) bool { return d.state[id] == liveSuspect }

// DeadOrCrashed is the predicate adoptions and demand shifts use: a node
// the detector declared dead, or one the transport knows is down (its
// agent state is frozen and must not be mutated).
func (d *Detector) DeadOrCrashed(id topology.NodeID) bool {
	return d.state[id] == liveDead || d.net.Crashed(id)
}

//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) scheduleSweep() {
	// Jitter the period ±10% so detector timers never beat exactly against
	// slot boundaries; the draw comes from the detector's own stream.
	at := d.clock.Now() + d.cfg.Interval*(0.9+0.2*d.rng.Float64())
	d.timer = d.clock.ScheduleCancelableIn(0, at, d.sweep)
}

// sweep is one detector period: probe, judge silence, recover, watchdog.
func (d *Detector) sweep() {
	if d.stopped {
		return
	}
	now := d.clock.Now()
	nodes := d.fleet.Tree.Nodes()

	// 1. Keepalives: every non-crashed node probes its parent and children.
	// Background sends hold no in-flight slot, so quiescence (and every
	// delivery counter) is untouched.
	for _, id := range nodes {
		if d.net.Crashed(id) {
			continue
		}
		if parent, err := d.fleet.Tree.Parent(id); err == nil && parent != topology.None {
			d.keepalive(id, parent)
		}
		for _, c := range d.fleet.Tree.Children(id) {
			d.keepalive(id, c)
		}
	}

	// 2. Judge silence. Transitions are collected first and applied in
	// sorted node order; the dead set is fully marked before any adoption
	// runs, so a parent and child dying in the same sweep never adopt into
	// each other.
	var newlyDead, comebacks []topology.NodeID
	for _, id := range nodes {
		if id == topology.GatewayID {
			continue // the gateway anchors the hierarchy (it hosts the detector)
		}
		silence := now - d.lastHeard[id]
		switch d.state[id] {
		case liveDead:
			if silence < d.cfg.DeadAfter {
				comebacks = append(comebacks, id)
			}
		case liveSuspect:
			if silence < d.cfg.SuspectAfter {
				d.state[id] = liveAlive
				delete(d.suspectedAt, id)
			} else if silence >= d.cfg.DeadAfter {
				newlyDead = append(newlyDead, id)
			}
		case liveAlive:
			if silence >= d.cfg.SuspectAfter {
				d.suspect(id, now)
				if silence >= d.cfg.DeadAfter {
					newlyDead = append(newlyDead, id)
				}
			}
		}
	}
	// Root-cause attribution: a node whose ancestor is dying in this same
	// sweep — or still merely suspect — is silent *because* its probe path
	// died with that ancestor: a crashed parent swallows its children's
	// keepalives, and delivery jitter can make the child cross DeadAfter a
	// sweep before the parent does (a child that silent has an ancestor at
	// least SuspectAfter silent). Blamed nodes get one grace window (a
	// fresh last-heard stamp) instead of a death: if they are truly alive,
	// adoption re-homes them when the ancestor is declared and their
	// probes flow again; if they crashed too, the grace expires with their
	// ancestor already declared (no longer blamable) and they die one
	// DeadAfter later, rescuing their own subtrees level by level.
	if len(newlyDead) > 0 {
		dying := make(map[topology.NodeID]bool, len(newlyDead))
		for _, id := range newlyDead {
			dying[id] = true
		}
		declared := newlyDead[:0]
		for _, id := range newlyDead {
			blamed := false
			if ancestors, err := d.fleet.Tree.Ancestors(id); err == nil {
				for _, a := range ancestors {
					if dying[a] || d.state[a] == liveSuspect {
						blamed = true
						break
					}
				}
			}
			if blamed {
				d.lastHeard[id] = now
				continue
			}
			declared = append(declared, id)
		}
		newlyDead = declared
	}
	for _, id := range newlyDead {
		d.state[id] = liveDead
	}
	for _, id := range newlyDead {
		d.declareDead(id, now)
	}
	for _, id := range comebacks {
		d.readmit(id, now)
	}

	// 3. Adjustment watchdog on live nodes.
	if d.cfg.AbortAfter > 0 {
		for _, id := range nodes {
			if d.state[id] == liveDead || d.net.Crashed(id) {
				continue
			}
			d.Aborts += d.fleet.node(id).abortStale(now, d.cfg.AbortAfter)
		}
	}

	d.scheduleSweep()
}

//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) keepalive(from, to topology.NodeID) {
	d.msgID++
	msg := coap.NewRequest(coap.NonConfirmable, coap.POST, d.msgID, proto.PathKeepalive)
	// An unknown peer cannot happen on a deployed fleet; the error path is
	// the transport's own accounting.
	//harplint:allow errcheck
	_ = d.net.SendBackground(from, to, msg)
}

//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) suspect(id topology.NodeID, now float64) {
	d.state[id] = liveSuspect
	d.suspectedAt[id] = now
	if m := d.cfg.Metrics; m != nil {
		m.Inc(obs.Key(obs.MetricSuspects))
	}
	if tr := d.cfg.Tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentSuspect).WithNode(int(id)))
	}
}

// declareDead records the death and runs the recovery: the live parent
// drops the dead child, every live orphan is adopted, and the dead agent's
// resource state is wiped so its stale assignments cannot pollute the
// fleet schedule while it is gone.
//
//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) declareDead(id topology.NodeID, now float64) {
	rec := DeathRecord{Node: id, SuspectedAt: d.suspectedAt[id], DeclaredAt: now}
	if rec.SuspectedAt == 0 {
		rec.SuspectedAt = now
	}
	delete(d.suspectedAt, id)
	d.Deaths = append(d.Deaths, rec)
	if m := d.cfg.Metrics; m != nil {
		m.Inc(obs.Key(obs.MetricDeaths))
	}
	if tr := d.cfg.Tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentDead).WithNode(int(id)).
			WithDetail(fmt.Sprintf("silent=%.0f", now-d.lastHeard[id])))
	}

	parent, err := d.fleet.Tree.Parent(id)
	if err != nil {
		d.errs = append(d.errs, err)
		return
	}
	if p := d.fleet.node(parent); p != nil && !d.DeadOrCrashed(parent) {
		p.dropDeadChild(id)
	}

	// Adopt the live orphans. Children returns a copy, so the adoptions'
	// tree rewiring cannot disturb the iteration; dead or crashed children
	// stay in place under the corpse — their own subtrees are rescued when
	// they are declared dead themselves.
	for _, orphan := range d.fleet.Tree.Children(id) {
		if d.DeadOrCrashed(orphan) {
			continue
		}
		// Detect→adopt latency, one observation per re-homed orphan: from
		// the sweep that first suspected the dead parent to this adoption
		// (milli-slots). Readmission-path adoptions have no suspicion
		// context and are deliberately not observed.
		if d.adopt(orphan, id, now) {
			if m := d.cfg.Metrics; m != nil {
				m.Dist(obs.Key(obs.MetricDetectAdoptMs)).Observe(int64((now - rec.SuspectedAt) * 1000))
			}
		}
	}

	d.fleet.node(id).resetResources()
}

// adopt re-homes one live orphan of deadParent under the deterministic
// candidate and records it.
//
//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) adopt(orphan, deadParent topology.NodeID, now float64) bool {
	candidate := d.adoptiveParent(deadParent)
	if candidate == topology.None {
		d.errs = append(d.errs, fmt.Errorf("agent: no live adoptive parent for %d", orphan))
		return false
	}
	demand := d.cfg.Demand(orphan, candidate)
	if err := d.fleet.Adopt(orphan, candidate, demand, d.DeadOrCrashed); err != nil {
		d.errs = append(d.errs, fmt.Errorf("agent: adopting %d under %d: %w", orphan, candidate, err))
		return false
	}
	d.Adoptions = append(d.Adoptions, AdoptionRecord{
		Orphan: orphan, DeadParent: deadParent, NewParent: candidate, At: now,
	})
	if m := d.cfg.Metrics; m != nil {
		m.Inc(obs.Key(obs.MetricAdoptions))
	}
	if tr := d.cfg.Tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentAdopt).WithNode(int(orphan)).WithPeer(int(candidate)).
			WithDetail(fmt.Sprintf("dead=%d", deadParent)))
	}
	return true
}

// adoptiveParent picks where a dead node's orphans go: the lowest-ID live
// child of the nearest live ancestor (excluding the dead branch), or that
// ancestor itself when it has no other live children. Deterministic, and
// never inside the orphan's own subtree — the candidates are siblings (or
// ancestors) of the dead parent, all strictly outside it.
//
//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) adoptiveParent(dead topology.NodeID) topology.NodeID {
	anchor, err := d.fleet.Tree.Parent(dead)
	if err != nil {
		return topology.None
	}
	exclude := dead
	for anchor != topology.None && d.DeadOrCrashed(anchor) {
		exclude = anchor
		next, err := d.fleet.Tree.Parent(anchor)
		if err != nil {
			return topology.None
		}
		anchor = next
	}
	if anchor == topology.None {
		return topology.None // the gateway itself is gone: nothing to attach to
	}
	for _, c := range d.fleet.Tree.Children(anchor) { // sorted: lowest ID wins
		if c != exclude && !d.DeadOrCrashed(c) {
			return c
		}
	}
	return anchor
}

// readmit handles a node heard again after its death declaration: a
// scripted restart (or a healed false positive). The node re-attaches
// with wiped volatile state through the restart machinery — under its
// unchanged parent when that parent is live, else through adoption.
//
//harplint:locked — single-threaded on the virtual clock (sweep events).
func (d *Detector) readmit(id topology.NodeID, now float64) {
	d.state[id] = liveAlive
	delete(d.suspectedAt, id)
	d.Readmissions++
	if tr := d.cfg.Tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentReadmit).WithNode(int(id)))
	}
	parent, err := d.fleet.Tree.Parent(id)
	if err != nil {
		d.errs = append(d.errs, err)
		return
	}
	if parent != topology.None && d.DeadOrCrashed(parent) {
		// The old parent is still gone: rejoining it would wedge; the
		// returning subtree re-homes like an orphan. Its agent lists may be
		// stale (children adopted away while it was dead), so sync them
		// from the tree first — rehome reloads demands through them.
		d.fleet.syncFromTree(id)
		d.adopt(id, parent, now)
		return
	}
	if err := d.fleet.RestartNode(id, d.cfg.Demand(topology.None, topology.None)); err != nil {
		d.errs = append(d.errs, fmt.Errorf("agent: readmitting %d: %w", id, err))
	}
}
