package agent

import (
	"fmt"

	"github.com/harpnet/harp/internal/obs"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
	"github.com/harpnet/harp/internal/transport"
)

// Fleet deploys one Node per network device over a transport and provides
// whole-network views (the global schedule, validation) that a real
// deployment would obtain by instrumentation.
type Fleet struct {
	Tree  *topology.Tree
	Frame schedule.Slotframe
	// nodes is indexed by the tree's dense node index (topology.Tree.Index);
	// slots freed by node removal are nil.
	nodes []*Node
}

// node resolves an agent through the tree's dense index; nil if unknown.
func (f *Fleet) node(id topology.NodeID) *Node {
	if i := f.Tree.Index(id); i >= 0 && i < len(f.nodes) {
		return f.nodes[i]
	}
	return nil
}

// DeployOption customises a fleet deployment.
type DeployOption func(*deployConfig)

type deployConfig struct {
	rootGap int
	tracer  *obs.Tracer
	metrics *obs.Registry
}

// WithRootGap makes the gateway leave the given number of idle slots
// between its layer partitions, so dynamic adjustments can widen a layer
// without shifting (and re-signalling) its successors.
func WithRootGap(slots int) DeployOption {
	return func(c *deployConfig) { c.rootGap = slots }
}

// WithTracer attaches an observability tracer to every deployed agent.
// Agents emit agent.* events for protocol transitions (reports, grants,
// escalations, commits, joins). A nil tracer disables tracing.
func WithTracer(t *obs.Tracer) DeployOption {
	return func(c *deployConfig) { c.tracer = t }
}

// WithMetrics attaches a metrics registry to every deployed agent. Agents
// count escalations, commits and rejections into it. A nil registry
// disables the counters.
func WithMetrics(r *obs.Registry) DeployOption {
	return func(c *deployConfig) { c.metrics = r }
}

// Deploy builds the agents for every node of the tree, loads the link
// demands into the owning parents, and registers the agents with the
// transport. Call Start (then run/drain the transport) to execute the
// static phase.
func Deploy(tree *topology.Tree, frame schedule.Slotframe, demand *traffic.Demand, net interface {
	transport.Network
	Register(topology.NodeID, transport.Handler)
}, opts ...DeployOption) (*Fleet, error) {
	var cfg deployConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := frame.Validate(); err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{Tree: tree, Frame: frame, nodes: make([]*Node, tree.IndexCap())}
	for _, id := range tree.Nodes() {
		parent, err := tree.Parent(id)
		if err != nil {
			return nil, err
		}
		ownLayer, err := tree.LinkLayer(id)
		if err != nil {
			return nil, err
		}
		maxLayer, err := tree.SubtreeMaxLayer(id)
		if err != nil {
			return nil, err
		}
		children := tree.Children(id)
		var nonLeaf []topology.NodeID
		for _, c := range children {
			if !tree.IsLeaf(c) {
				nonLeaf = append(nonLeaf, c)
			}
		}
		n := &Node{
			id:       id,
			parent:   parent,
			children: children,
			nonLeaf:  nonLeaf,
			ownLayer: ownLayer,
			maxLayer: maxLayer,
			frame:    frame,
			rootGap:  cfg.rootGap,
			net:      net,
			tracer:   cfg.tracer,
			metrics:  cfg.metrics,
		}
		// Only nodes that host children carry protocol maps; leaf agents stay
		// map-free (the dominant population at scale). The gateway always gets
		// them — it self-allocates partitions.
		if len(children) > 0 || parent == topology.None {
			n.dirs[0].ensure()
			n.dirs[1].ensure()
		}
		// Load the demands of the links between this node and its children.
		for _, c := range children {
			for _, d := range topology.Directions() {
				l := topology.Link{Child: c, Direction: d}
				n.dir(d).demand[c] = demand.Cells(l)
				flows := demand.Flows(l)
				if len(flows) > 0 {
					n.dir(d).topRate[c] = flows[0].Task.Rate
				}
			}
		}
		f.nodes[tree.Index(id)] = n
		net.Register(id, n)
	}
	return f, nil
}

// Start triggers the static partition allocation phase: nodes at the
// deepest non-leaf level report first (§IV-B). The caller must then run the
// transport to completion (Bus.Run or Live.WaitIdle).
func (f *Fleet) Start() {
	for _, id := range f.Tree.Nodes() {
		f.node(id).start()
	}
}

// Node returns the agent for a device.
func (f *Fleet) Node(id topology.NodeID) (*Node, error) {
	n := f.node(id)
	if n == nil {
		return nil, fmt.Errorf("agent: unknown node %d", id)
	}
	return n, nil
}

// SetLinkDemand applies a traffic change at the owning parent agent. The
// caller must run the transport afterwards to let the adjustment protocol
// complete.
func (f *Fleet) SetLinkDemand(l topology.Link, cells int, topRate float64) error {
	parent, err := f.Tree.Parent(l.Child)
	if err != nil {
		return err
	}
	if parent == topology.None {
		return fmt.Errorf("agent: link %v has no parent", l)
	}
	return f.node(parent).SetChildDemand(l.Child, l.Direction, cells, topRate)
}

// RequestLinkDemand routes a traffic change through the child end of the
// link, as the paper's flowchart does: the child sends a PUT /intf request
// upward and the parent absorbs or escalates it. The caller must run the
// transport afterwards.
func (f *Fleet) RequestLinkDemand(l topology.Link, cells int) error {
	n := f.node(l.Child)
	if n == nil {
		return fmt.Errorf("agent: unknown node %d", l.Child)
	}
	return n.RequestDemand(l.Direction, cells)
}

// BuildSchedule assembles the global schedule from every agent's local
// assignment — the instrumentation view used for validation and
// simulation.
func (f *Fleet) BuildSchedule() (*schedule.Schedule, error) {
	s, err := schedule.NewSchedule(f.Frame)
	if err != nil {
		return nil, err
	}
	for _, id := range f.Tree.Nodes() {
		n := f.node(id)
		for _, d := range topology.Directions() {
			for child, cells := range n.Assignment(d) {
				if len(cells) == 0 {
					continue
				}
				if err := s.Assign(topology.Link{Child: child, Direction: d}, cells...); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

// Validate builds the global schedule and checks the collision-freedom and
// half-duplex invariants.
func (f *Fleet) Validate() error {
	s, err := f.BuildSchedule()
	if err != nil {
		return err
	}
	return s.Validate(f.Tree)
}

// Reparent performs a distributed topology change (§V, "topology
// changes"): node — with its subtree — detaches from its current parent
// (DELETE /intf), the fleet rewires the routing structure (RPL's job), the
// subtree recomputes its interfaces bottom-up, and the moved node re-joins
// under newParent with a Join-flagged POST /intf that the new branch hosts
// through the ordinary adjustment machinery. newDemand is the link demand
// over the post-change routes (e.g. traffic.Compute on the new tree). The
// caller must run the transport afterwards; validate with Fleet.Validate.
func (f *Fleet) Reparent(node, newParent topology.NodeID, newDemand *traffic.Demand) error {
	mover, err := f.Node(node)
	if err != nil {
		return err
	}
	if _, err := f.Node(newParent); err != nil {
		return err
	}
	oldParent, err := f.Tree.Parent(node)
	if err != nil {
		return err
	}
	if oldParent == newParent {
		return fmt.Errorf("agent: node %d already under %d", node, newParent)
	}

	// 1. Leave: announce detachment to the old parent.
	mover.Leave()

	return f.rehome(node, newParent, newDemand, nil)
}

// Adopt re-homes an orphan whose parent was declared dead, with its whole
// subtree, under newParent. It is Reparent without the DELETE /intf leave
// announcement: the dead parent cannot hear it, and a confirmable leave
// would only wedge the pair for the full retransmission backoff. Instead
// the dead parent's agent state is pruned directly (its own notification
// sends are crash-dropped by the transport — a dead radio transmits
// nothing). Adopting a node already under newParent is a no-op, which
// makes duplicate death declarations idempotent. skipDemandAt, if
// non-nil, suppresses the outside-subtree demand shifts at parents the
// caller knows are dead (their frozen state is rebuilt at readmission).
func (f *Fleet) Adopt(orphan, newParent topology.NodeID, newDemand *traffic.Demand,
	skipDemandAt func(topology.NodeID) bool) error {
	if _, err := f.Node(orphan); err != nil {
		return err
	}
	if _, err := f.Node(newParent); err != nil {
		return err
	}
	oldParent, err := f.Tree.Parent(orphan)
	if err != nil {
		return err
	}
	if oldParent == topology.None {
		return fmt.Errorf("agent: cannot adopt the gateway")
	}
	if oldParent == newParent {
		return nil // already re-homed: duplicate adoption is idempotent
	}
	if op := f.node(oldParent); op != nil {
		op.dropDeadChild(orphan)
	}
	return f.rehome(orphan, newParent, newDemand, skipDemandAt)
}

// rehome is the shared body of Reparent and Adopt: rewire the tree, reset
// and re-report the moved subtree, and shift forwarding-path demands
// outside it.
func (f *Fleet) rehome(node, newParent topology.NodeID, newDemand *traffic.Demand,
	skipDemandAt func(topology.NodeID) bool) error {
	mover := f.node(node)
	subtree, err := f.Tree.Subtree(node)
	if err != nil {
		return err
	}

	// 2. Rewire (what RPL does) and refresh every agent's coordinates —
	// depths shift inside the moved subtree, subtree-max layers shift on
	// both ancestor chains.
	if err := f.Tree.Reparent(node, newParent); err != nil {
		return err
	}
	for _, id := range f.Tree.Nodes() {
		parent, err := f.Tree.Parent(id)
		if err != nil {
			return err
		}
		ownLayer, err := f.Tree.LinkLayer(id)
		if err != nil {
			return err
		}
		maxLayer, err := f.Tree.SubtreeMaxLayer(id)
		if err != nil {
			return err
		}
		f.node(id).setStructure(parent, ownLayer, maxLayer)
	}
	np := f.node(newParent)
	np.mu.Lock()
	if !containsNode(np.children, node) {
		np.children = insertNode(np.children, node)
		if !f.Tree.IsLeaf(node) {
			np.nonLeaf = insertNode(np.nonLeaf, node)
		}
	}
	// The new parent may have been a leaf until now; give it its maps.
	np.dirs[0].ensure()
	np.dirs[1].ensure()
	np.mu.Unlock()

	// 3. Reset the moved subtree's resource state and load the post-change
	// demands of its internal links into the owning parents.
	for _, id := range subtree {
		f.node(id).resetResources()
	}
	for _, id := range subtree {
		agentNode := f.node(id)
		agentNode.mu.Lock()
		for _, c := range agentNode.children {
			for _, d := range topology.Directions() {
				l := topology.Link{Child: c, Direction: d}
				agentNode.dir(d).demand[c] = newDemand.Cells(l)
				flows := newDemand.Flows(l)
				if len(flows) > 0 {
					agentNode.dir(d).topRate[c] = flows[0].Task.Rate
				}
			}
		}
		agentNode.mu.Unlock()
	}

	// 4. Trigger the subtree's bottom-up re-report; the moved node's report
	// carries the Join flag and its own-link demands.
	upLink := topology.Link{Child: node, Direction: topology.Uplink}
	downLink := topology.Link{Child: node, Direction: topology.Downlink}
	mover.startJoin(newDemand.Cells(upLink), newDemand.Cells(downLink))
	for _, id := range subtree {
		if id == node {
			continue
		}
		agentNode := f.node(id)
		agentNode.mu.Lock()
		if len(agentNode.children) > 0 && len(agentNode.nonLeaf) == 0 {
			agentNode.computeAndForwardInterface()
		}
		agentNode.mu.Unlock()
	}

	// 5. Forwarding-path demand shifts outside the subtree go through the
	// ordinary traffic-change path at the owning parents.
	inSubtree := make(map[topology.NodeID]bool, len(subtree))
	for _, id := range subtree {
		inSubtree[id] = true
	}
	for _, l := range newDemand.Links() {
		if inSubtree[l.Child] {
			continue
		}
		parent, err := f.Tree.Parent(l.Child)
		if err != nil || parent == topology.None {
			continue
		}
		if skipDemandAt != nil && skipDemandAt(parent) {
			continue
		}
		pa := f.node(parent)
		pa.mu.Lock()
		known := containsNode(pa.children, l.Child)
		current := pa.dir(l.Direction).demand[l.Child]
		pa.mu.Unlock()
		if !known {
			// The child was dropped as dead at this parent (or has not yet
			// re-attached); its demand re-registers through the Join path.
			continue
		}
		if current == newDemand.Cells(l) {
			continue
		}
		flows := newDemand.Flows(l)
		top := 1.0
		if len(flows) > 0 {
			top = flows[0].Task.Rate
		}
		if err := pa.SetChildDemand(l.Child, l.Direction, newDemand.Cells(l), top); err != nil {
			return err
		}
	}
	return nil
}

// RestartNode models the recovery side of a device reboot: the agent's
// volatile protocol state is wiped (as RAM is), its link demands are
// reloaded from configuration, and it re-attaches to its unchanged parent
// through the same Join flag a reparented node uses. Its non-leaf children
// — who never crashed — re-report their interfaces (on a real deployment
// they notice the parent's reboot), which lets the node rebuild its own
// interface bottom-up; the parent's onChildJoin then re-syncs the grants
// the reboot lost. The caller scripts the outage itself on the transport
// (Bus.Crash before, Bus.Restart just before calling this) and runs the
// transport afterwards; validate with Fleet.Validate.
func (f *Fleet) RestartNode(id topology.NodeID, demand *traffic.Demand) error {
	n, err := f.Node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	gateway := n.parent == topology.None
	n.mu.Unlock()
	if gateway {
		return fmt.Errorf("agent: gateway restart is not supported")
	}
	// Sync the agent's child lists with the current tree before the reset:
	// while the node was down its children may have been adopted away (or a
	// neighbour attached), and the frozen lists would reload demand for
	// links that no longer exist. A no-op when the topology is unchanged.
	f.syncFromTree(id)
	n.resetResources()
	n.mu.Lock()
	nonLeaf := append([]topology.NodeID(nil), n.nonLeaf...)
	for _, d := range topology.Directions() {
		st := n.dir(d)
		st.myCells = nil
		for _, c := range n.children {
			l := topology.Link{Child: c, Direction: d}
			st.demand[c] = demand.Cells(l)
			flows := demand.Flows(l)
			if len(flows) > 0 {
				st.topRate[c] = flows[0].Task.Rate
			}
		}
	}
	n.mu.Unlock()
	upLink := topology.Link{Child: id, Direction: topology.Uplink}
	downLink := topology.Link{Child: id, Direction: topology.Downlink}
	n.startJoin(demand.Cells(upLink), demand.Cells(downLink))
	for _, c := range nonLeaf {
		child := f.node(c)
		child.mu.Lock()
		child.computeAndForwardInterface()
		child.mu.Unlock()
	}
	return nil
}

// syncFromTree reconciles one agent's child lists (and their demand
// entries) with the current tree. Used when an agent's frozen state may
// lag the topology: a restarting node whose children were adopted away
// while it was down.
func (f *Fleet) syncFromTree(id topology.NodeID) {
	n := f.node(id)
	if n == nil {
		return
	}
	treeChildren := f.Tree.Children(id)
	var treeNonLeaf []topology.NodeID
	for _, c := range treeChildren {
		if !f.Tree.IsLeaf(c) {
			treeNonLeaf = append(treeNonLeaf, c)
		}
	}
	n.mu.Lock()
	n.children = treeChildren
	n.nonLeaf = treeNonLeaf
	for _, d := range topology.Directions() {
		st := n.dir(d)
		for c := range st.demand {
			if !containsNode(treeChildren, c) {
				delete(st.demand, c)
				delete(st.topRate, c)
			}
		}
	}
	n.mu.Unlock()
}

// Rejections sums the adjustment rejections across agents.
func (f *Fleet) Rejections() int {
	total := 0
	for _, n := range f.nodes {
		if n == nil {
			continue
		}
		n.mu.Lock()
		total += n.Rejections
		n.mu.Unlock()
	}
	return total
}

// BindVirtualTime gives every agent a virtual-clock reading so
// escalations are stamped (pendingSince) and escalation→commit latency
// is observed. The failure detector's setLiveness later overwrites the
// source with the same clock plus its delivery hook; binding here only
// means stamping works on runs without a detector. Behaviour-neutral:
// the stamps are read only by the watchdog and the latency telemetry.
func (f *Fleet) BindVirtualTime(vnow func() float64) {
	for _, n := range f.nodes {
		if n == nil {
			continue
		}
		n.mu.Lock()
		n.vnow = vnow
		n.mu.Unlock()
	}
}

// PendingAdjustments counts the fleet's in-flight adjustments: layers
// holding a stamped escalation whose grant has not committed yet. The
// telemetry layer samples it at window boundaries.
func (f *Fleet) PendingAdjustments() int {
	total := 0
	for _, n := range f.nodes {
		if n == nil {
			continue
		}
		n.mu.Lock()
		for _, d := range topology.Directions() {
			total += len(n.dir(d).pendingSince)
		}
		n.mu.Unlock()
	}
	return total
}
