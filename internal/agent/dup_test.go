package agent

import (
	"testing"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
	"github.com/harpnet/harp/internal/transport"
)

// compareToPlan asserts the fleet's global schedule equals the centralized
// planner's, link by link.
func compareToPlan(t *testing.T, fleet *Fleet, plan *core.Plan) {
	t.Helper()
	got, err := fleet.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCells() != want.TotalCells() {
		t.Fatalf("cells: distributed %d vs centralized %d", got.TotalCells(), want.TotalCells())
	}
	for _, l := range want.Links() {
		a, b := got.Cells(l), want.Cells(l)
		if len(a) != len(b) {
			t.Fatalf("link %v: %d vs %d cells", l, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("link %v cell %d: %v vs %v", l, i, a[i], b[i])
			}
		}
	}
}

// Every protocol message delivered twice (a duplication fault on every
// delivery, no reliability layer to suppress it): the handlers' idempotency
// guards must keep the fleet's state identical to the centralized planner
// through the static phase and a stream of adjustments — including an
// escalating one — without message amplification running away.
func TestHandlersIdempotentUnderDuplicateDelivery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tree *topology.Tree
	}{
		{"Fig1", topology.Fig1()},
		{"Testbed50", topology.Testbed50()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frame := testFrame()
			tasks, err := traffic.UniformEcho(tc.tree, 1)
			if err != nil {
				t.Fatal(err)
			}
			demand, err := traffic.Compute(tc.tree, tasks)
			if err != nil {
				t.Fatal(err)
			}
			bus, err := transport.NewBus(frame.Slots, 1)
			if err != nil {
				t.Fatal(err)
			}
			bus.SetFaults(transport.FaultConfig{Dup: 1.0, Seed: 4})
			fleet, err := Deploy(tc.tree, frame, demand, bus)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := core.NewPlan(tc.tree.Clone(), frame, demand, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fleet.Start()
			if _, err := bus.Run(); err != nil {
				t.Fatal(err)
			}
			compareToPlan(t, fleet, plan)

			steps := []struct {
				child topology.NodeID
				dir   topology.Direction
				cells int
			}{
				{10, topology.Uplink, 3},
				{11, topology.Downlink, 6},
				{10, topology.Uplink, 1}, // release
			}
			for i, s := range steps {
				l := topology.Link{Child: s.child, Direction: s.dir}
				if err := fleet.SetLinkDemand(l, s.cells, float64(s.cells)); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if _, err := bus.Run(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if _, err := plan.SetLinkDemand(l, s.cells, float64(s.cells)); err != nil {
					t.Fatalf("step %d plan: %v", i, err)
				}
				compareToPlan(t, fleet, plan)
				if err := fleet.Validate(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			if bus.Faults().Duplicated == 0 {
				t.Fatal("duplication faults never fired")
			}
		})
	}
}

// The same duplicated-channel run with CON reliability enabled: the
// transport's Message-ID dedup absorbs the duplicates before they reach the
// handlers, and the schedule still matches the planner.
func TestReliabilitySuppressesDuplicatesFleetWide(t *testing.T) {
	tree := topology.Fig1()
	frame := testFrame()
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := transport.NewBus(frame.Slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	bus.EnableReliability(7)
	bus.SetFaults(transport.FaultConfig{Dup: 0.5, Seed: 4})
	fleet, err := Deploy(tree, frame, demand, bus)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(tree.Clone(), frame, demand, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Start()
	if _, err := bus.Run(); err != nil {
		t.Fatal(err)
	}
	compareToPlan(t, fleet, plan)
	if bus.Faults().DuplicatesSuppressed == 0 {
		t.Error("dedup cache suppressed nothing on a duplicating channel")
	}
	if bus.Pending() != 0 {
		t.Errorf("Pending = %d after drain", bus.Pending())
	}
}

// A lossy channel under reliability: the static phase must still converge
// to the planner's schedule — retransmissions recover every lost report,
// grant and notice.
func TestStaticPhaseConvergesUnderLoss(t *testing.T) {
	tree := topology.Testbed50()
	frame := testFrame()
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := transport.NewBus(frame.Slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	bus.EnableReliability(7)
	bus.SetFaults(transport.FaultConfig{Drop: 0.1, Seed: 12})
	fleet, err := Deploy(tree, frame, demand, bus)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(tree.Clone(), frame, demand, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Start()
	if _, err := bus.Run(); err != nil {
		t.Fatal(err)
	}
	if bus.Faults().GiveUps > 0 {
		t.Fatalf("give-ups at drop 0.1 seed 12: %+v", bus.Faults())
	}
	compareToPlan(t, fleet, plan)
	if err := fleet.Validate(); err != nil {
		t.Fatal(err)
	}
	if bus.Faults().Retransmissions == 0 {
		t.Error("loss exercised no retransmissions")
	}
}
