// Package agent implements HARP as a distributed protocol: one Node per
// network device, exchanging the CoAP messages of Table I over a transport.
// The agents execute the same three phases as the centralized planner in
// internal/core — bottom-up interface generation, top-down partition
// allocation, distributed schedule generation, and dynamic partition
// adjustment — but each node holds only its own slice of state, exactly as
// on the paper's testbed. The per-node computations are shared with the
// planner (core.Compose, core.AllocateRoot, core.SplitPartition,
// core.AssignCells, core.AdjustLayout), so the distributed execution
// provably converges to the same schedules (asserted by integration tests).
package agent

import (
	"fmt"
	"sort"
	"sync"

	"github.com/harpnet/harp/internal/coap"
	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/obs"
	"github.com/harpnet/harp/internal/proto"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/transport"
)

// dirState is one direction's protocol state at a node.
type dirState struct {
	// demand and topRate describe the links between this node and its
	// children ("each node only maintains the cell requirements for the
	// links passing through it", §II-A).
	demand  map[topology.NodeID]int
	topRate map[topology.NodeID]float64

	// childIfaces holds the interfaces reported by non-leaf children.
	childIfaces map[topology.NodeID]proto.DirInterface
	// iface is this node's computed interface.
	iface proto.DirInterface

	// layouts and childComps are the committed composition state per layer
	// (> own link layer).
	layouts    map[int]core.Layout
	childComps map[int]map[topology.NodeID]core.Component

	// pending holds recompositions computed while escalating an adjustment,
	// committed when the parent grants the new partition.
	pendingLayouts map[int]core.Layout
	pendingComps   map[int]map[topology.NodeID]core.Component

	// deferred queues adjust requests that arrived at a layer while an
	// escalation for that layer was still in flight; they replay once the
	// parent's grant commits the pending recomposition. Without this queue,
	// concurrent escalations through a shared ancestor overwrite each
	// other's pending state and one request is silently lost.
	deferred map[int][]deferredAdjust

	// pendingDemand snapshots child link demands raised by an own-layer
	// escalation that has not been granted yet. If the escalation dies (the
	// parent is unreachable and the transport gives up), the increase is
	// reverted — otherwise the stale demand would re-escalate on the next
	// interface recomputation, e.g. while re-hosting a rejoining neighbour.
	pendingDemand map[topology.NodeID]demandSnapshot

	// pendingSince stamps the virtual time each layer's escalation left
	// (and demandSince the own-layer provisional demand raise), for the
	// adjustment watchdog. Only written when the node has a virtual-time
	// source (vnow, wired by the failure detector); zero cost otherwise.
	pendingSince map[int]float64
	demandSince  float64

	// parts are the partitions granted by the parent (or self-allocated at
	// the gateway), keyed by layer.
	parts map[int]schedule.Region

	// assignment is the RM cell assignment of the own-layer links.
	assignment map[topology.NodeID][]schedule.Cell
	// sentRegions caches the last partition regions pushed to children, to
	// send updates only on change.
	sentRegions map[int]map[topology.NodeID]schedule.Region

	// myCells are the cells the parent granted for this node's own link.
	myCells []schedule.Cell
}

// ensure allocates the per-child and per-layer maps. Called when a node
// (first) hosts children: at Deploy for non-leaves and the gateway, on a
// Join-flagged report (a subtree attached under a former leaf), and when
// Fleet.Reparent rewires a subtree under a former leaf.
func (st *dirState) ensure() {
	if st.demand == nil {
		st.demand = make(map[topology.NodeID]int)
	}
	if st.topRate == nil {
		st.topRate = make(map[topology.NodeID]float64)
	}
	if st.childIfaces == nil {
		st.childIfaces = make(map[topology.NodeID]proto.DirInterface)
	}
	if st.layouts == nil {
		st.layouts = make(map[int]core.Layout)
	}
	if st.childComps == nil {
		st.childComps = make(map[int]map[topology.NodeID]core.Component)
	}
	if st.pendingLayouts == nil {
		st.pendingLayouts = make(map[int]core.Layout)
	}
	if st.pendingComps == nil {
		st.pendingComps = make(map[int]map[topology.NodeID]core.Component)
	}
	if st.parts == nil {
		st.parts = make(map[int]schedule.Region)
	}
	if st.assignment == nil {
		st.assignment = make(map[topology.NodeID][]schedule.Cell)
	}
	if st.sentRegions == nil {
		st.sentRegions = make(map[int]map[topology.NodeID]schedule.Region)
	}
	if st.deferred == nil {
		st.deferred = make(map[int][]deferredAdjust)
	}
	if st.pendingDemand == nil {
		st.pendingDemand = make(map[topology.NodeID]demandSnapshot)
	}
}

// deferredAdjust is one queued hostChildComponent call.
type deferredAdjust struct {
	from topology.NodeID
	comp core.Component
}

// demandSnapshot is a child link demand before an un-granted escalation.
type demandSnapshot struct {
	cells   int
	topRate float64
}

// Node is one HARP protocol agent.
type Node struct {
	mu sync.Mutex

	id       topology.NodeID
	parent   topology.NodeID
	children []topology.NodeID // sorted
	nonLeaf  []topology.NodeID // sorted non-leaf children
	ownLayer int               // l(V_i) = depth+1
	maxLayer int               // l(G_Vi)
	frame    schedule.Slotframe
	rootGap  int // gateway only: idle slots between layer partitions
	net      transport.Network

	dirs  [2]dirState
	msgID uint16

	// joining is set while this node re-attaches after a parent switch: the
	// next interface report goes out with the Join flag and these own-link
	// demands.
	joining    bool
	joinDemand [2]int

	// settledOnce records that the first PartitionSet was consumed, so a
	// duplicated copy of it (same regions) is recognised as such — without
	// it the legitimate first empty-entries set of a zero-demand subtree
	// would look like a duplicate of nothing.
	settledOnce bool

	// Rejections counts adjustment requests the node (as gateway) could not
	// satisfy.
	Rejections int

	// tracer and metrics are the deployment's observability sinks
	// (WithTracer, WithMetrics). Both are nil-safe: the zero value means
	// disabled.
	tracer  *obs.Tracer
	metrics *obs.Registry

	// heard, when set by the failure detector, is called (under n.mu) for
	// every delivered message — any traffic from a peer is liveness
	// evidence, keepalives included. nil when detection is off.
	heard func(from topology.NodeID)
	// vnow, when set by the failure detector, reads the shared virtual
	// clock so escalations can be stamped for the adjustment watchdog.
	vnow func() float64
	// giveUps records the (peer, adjustment) keys already degraded into a
	// rejection, so a dead parent's repeated transport give-ups for the
	// same adjustment coalesce into one counted degradation. Lazily
	// allocated on the first give-up; cleared when the peer proves
	// reachable again (a grant) or the node is rewired/reset.
	giveUps map[giveUpKey]bool
}

// giveUpKey identifies one degraded (peer, adjustment) pair: the
// unreachable peer plus the adjustment's direction and layer for PUT
// escalations, or report=true for a lost POST interface report.
type giveUpKey struct {
	peer   topology.NodeID
	d      topology.Direction
	layer  int
	report bool
}

//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) dir(d topology.Direction) *dirState { return &n.dirs[d] }

// ID returns the node's identifier.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) ID() topology.NodeID { return n.id }

//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) nextMsgID() uint16 {
	n.msgID++
	return n.msgID
}

//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) isGateway() bool { return n.parent == topology.None }

// reject counts an adjustment the node could not satisfy, in both the
// legacy field and the metrics registry.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) reject() {
	n.Rejections++
	n.metrics.Inc(obs.NodeKey(int(n.id), obs.MetricRejections))
}

// send builds and transmits a CoAP request carrying a HARP payload.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) send(to topology.NodeID, method coap.Code, path string, payload []byte) {
	msg := coap.NewRequest(coap.NonConfirmable, method, n.nextMsgID(), path)
	msg.Payload = payload
	// Transport errors indicate a mis-deployed fleet; agents cannot repair
	// that, so the failure surfaces via the transport's own accounting.
	//harplint:allow errcheck
	_ = n.net.Send(n.id, to, msg)
}

// Handle implements transport.Handler: the CoAP router of Table I.
func (n *Node) Handle(from topology.NodeID, msg coap.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.heard != nil {
		// Any delivered message is liveness evidence for the detector;
		// keepalive probes (POST /ka) carry nothing else and fall through
		// the router below.
		n.heard(from)
	}
	switch {
	case msg.Code == coap.POST && msg.Path() == proto.PathInterface:
		if m, err := proto.DecodeInterfaceReport(msg.Payload); err == nil {
			if m.Join {
				n.onChildJoin(m)
			} else {
				n.onInterfaceReport(m)
			}
		}
	case msg.Code == coap.DELETE && msg.Path() == proto.PathInterface:
		n.onChildLeave(from)
	case msg.Code == coap.PUT && msg.Path() == proto.PathInterface:
		if m, err := proto.DecodeAdjustRequest(msg.Payload); err == nil {
			n.onAdjustRequest(from, m)
		}
	case msg.Code == coap.POST && msg.Path() == proto.PathPartition:
		if m, err := proto.DecodePartitionSet(msg.Payload); err == nil {
			n.onPartitionSet(m)
		}
	case msg.Code == coap.PUT && msg.Path() == proto.PathPartition:
		if m, err := proto.DecodePartitionUpdate(msg.Payload); err == nil {
			n.onPartitionUpdate(m)
		}
	case msg.Code == coap.POST && msg.Path() == proto.PathSchedule:
		if m, err := proto.DecodeScheduleNotice(msg.Payload); err == nil {
			n.dir(m.Direction).myCells = m.Cells
		}
	}
}

// HandleSendFailure implements transport.FailureHandler: a confirmable
// message of ours exhausted MAX_RETRANSMIT — the peer is dead or the link
// is down. Upward traffic (reports, adjust requests) degrades into a
// counted rejection, and an escalation's reserved pending state is unwound
// so the layer can adjust again instead of wedging behind a grant that
// will never come; deferred requests queued behind it replay immediately.
// Downward traffic (grants, notices) is simply dropped — a crashed child
// re-syncs through the Join path when it returns.
func (n *Node) HandleSendFailure(to topology.NodeID, msg coap.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case msg.Code == coap.PUT && msg.Path() == proto.PathInterface:
		if m, err := proto.DecodeAdjustRequest(msg.Payload); err == nil {
			// One degradation per (peer, adjustment): a dead parent makes
			// every queued escalation of a layer give up in turn, but the
			// layer degrades once until the peer proves reachable again.
			n.degradeOnce(giveUpKey{peer: to, d: m.Direction, layer: m.Layer})
			if tr := n.tracer; tr.Enabled() {
				tr.Emit(obs.Ev(obs.KindAgentUnwind).WithNode(int(n.id)).WithPeer(int(to)).
					WithLayer(m.Layer).WithDetail(m.Direction.String()))
			}
			n.unwindPending(m.Direction, m.Layer)
		} else {
			n.reject()
		}
	case msg.Code == coap.POST && msg.Path() == proto.PathInterface:
		// Interface report lost: the parent is unreachable.
		n.degradeOnce(giveUpKey{peer: to, report: true})
	}
}

// degradeOnce counts a rejection for the (peer, adjustment) key unless it
// already degraded since the peer last proved reachable.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) degradeOnce(key giveUpKey) {
	if n.giveUps[key] {
		return
	}
	if n.giveUps == nil {
		n.giveUps = make(map[giveUpKey]bool)
	}
	n.giveUps[key] = true
	n.reject()
}

// unwindPending rolls one layer's in-flight adjustment state back to the
// last committed layout: the pending recomposition is dropped, own-layer
// provisional demand raises revert to their snapshots, and requests that
// deferred behind the escalation replay immediately. Shared by the
// transport give-up path (HandleSendFailure) and the adjustment watchdog
// (abortStale) — both end an escalation whose grant will never come.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) unwindPending(d topology.Direction, layer int) {
	st := n.dir(d)
	if layer == n.ownLayer {
		// A dead own-layer escalation: the grant will never come, so the
		// provisional link-demand increases revert.
		for c, snap := range st.pendingDemand {
			st.demand[c] = snap.cells
			st.topRate[c] = snap.topRate
			delete(st.pendingDemand, c)
		}
		st.demandSince = 0
	}
	delete(st.pendingLayouts, layer)
	delete(st.pendingComps, layer)
	delete(st.pendingSince, layer)
	if q := st.deferred[layer]; len(q) > 0 {
		delete(st.deferred, layer)
		for _, da := range q {
			n.hostChildComponent(da.from, d, layer, da.comp)
		}
	}
	if debugChecks {
		// The rollback must land on a consistent committed state: the
		// committed layout still fits the granted partition.
		if region, ok := st.parts[layer]; ok && layer != n.ownLayer {
			if !core.LayoutValid(region.Slots, region.Channels, st.layouts[layer], st.childComps[layer]) {
				panic(fmt.Sprintf("harpdebug: node %d unwind at layer %d %s left an invalid committed layout",
					n.id, layer, d))
			}
		}
	}
}

// abortStale is the adjustment watchdog: every in-flight adjustment older
// than deadline virtual-time units is aborted and rolled back to the last
// committed schedule, exactly as a transport give-up would roll it back.
// This catches the hang the transport's retransmission give-up cannot: a
// parent that ACKed the escalation and then died never answers, and no
// timer fires at the child. Called by the failure detector's sweep; now is
// the current virtual time. Returns the number of aborted adjustments.
func (n *Node) abortStale(now, deadline float64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	aborted := 0
	for _, d := range topology.Directions() {
		st := n.dir(d)
		// Collect first: unwindPending mutates pendingSince (deletes the
		// aborted layer, re-stamps layers its deferred replays re-escalate),
		// and map range order is not deterministic.
		var stale []int
		for layer, since := range st.pendingSince {
			if now-since >= deadline {
				stale = append(stale, layer)
			}
		}
		sort.Ints(stale)
		for _, layer := range stale {
			aborted++
			n.metrics.Inc(obs.NodeKey(int(n.id), obs.MetricAborts))
			if tr := n.tracer; tr.Enabled() {
				tr.Emit(obs.Ev(obs.KindAgentAbort).WithNode(int(n.id)).WithPeer(int(n.parent)).
					WithLayer(layer).WithDetail(d.String()))
			}
			n.reject()
			n.unwindPending(d, layer)
		}
		if st.demandSince != 0 && now-st.demandSince >= deadline && len(st.pendingDemand) > 0 {
			aborted++
			n.metrics.Inc(obs.NodeKey(int(n.id), obs.MetricAborts))
			if tr := n.tracer; tr.Enabled() {
				tr.Emit(obs.Ev(obs.KindAgentAbort).WithNode(int(n.id)).WithPeer(int(n.parent)).
					WithLayer(n.ownLayer).WithDetail(d.String()))
			}
			n.reject()
			n.unwindPending(d, n.ownLayer)
		}
	}
	return aborted
}

// dropDeadChild removes a child the failure detector declared dead, as if
// a DELETE /intf had arrived from it: its demand and components disappear
// and the own-layer schedule shrinks. Idempotent (an unknown child is a
// no-op).
func (n *Node) dropDeadChild(c topology.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onChildLeave(c)
}

// setLiveness wires (or, with nils, unwires) the failure detector's
// delivery hook and virtual-time source.
func (n *Node) setLiveness(heard func(topology.NodeID), vnow func() float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.heard = heard
	n.vnow = vnow
}

// start kicks off the static phase at this node: non-leaf nodes whose
// children are all leaves can compute and report immediately.
func (n *Node) start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.children) == 0 {
		return // leaves report nothing; parents hold their link demands
	}
	if len(n.nonLeaf) == 0 {
		n.computeAndForwardInterface()
	}
}

// onInterfaceReport stores a child's interface; when all non-leaf children
// have reported, this node composes its own interface and forwards it (or
// allocates, at the gateway).
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) onInterfaceReport(m proto.InterfaceReport) {
	up, okU := n.dir(topology.Uplink).childIfaces[m.Owner]
	down, okD := n.dir(topology.Downlink).childIfaces[m.Owner]
	if okU && okD && dirIfaceEqual(up, m.Up) && dirIfaceEqual(down, m.Down) &&
		len(n.dir(topology.Uplink).childIfaces) >= len(n.nonLeaf) {
		return // duplicate of an already-consumed report: recomputing would re-forward
	}
	n.dir(topology.Uplink).childIfaces[m.Owner] = m.Up
	n.dir(topology.Downlink).childIfaces[m.Owner] = m.Down
	if len(n.dir(topology.Uplink).childIfaces) < len(n.nonLeaf) {
		return
	}
	n.computeAndForwardInterface()
}

// computeAndForwardInterface runs interface generation (§IV-B) for both
// directions, then reports upward or allocates at the gateway.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) computeAndForwardInterface() {
	for _, d := range topology.Directions() {
		n.computeInterface(d)
	}
	if n.isGateway() {
		n.allocateRoot()
		return
	}
	report := proto.InterfaceReport{
		Owner: n.id,
		Up:    n.dir(topology.Uplink).iface,
		Down:  n.dir(topology.Downlink).iface,
	}
	if n.joining {
		report.Join = true
		report.Up.OwnDemand = n.joinDemand[topology.Uplink]
		report.Down.OwnDemand = n.joinDemand[topology.Downlink]
		n.joining = false
	}
	if tr := n.tracer; tr.Enabled() {
		sp := tr.Emit(obs.Ev(obs.KindAgentReport).WithNode(int(n.id)).WithPeer(int(n.parent)).
			WithLayer(n.ownLayer).WithDetail(fmt.Sprintf("join=%t", report.Join)))
		tr.Push(sp)
		defer tr.Pop()
	}
	n.send(n.parent, coap.POST, proto.PathInterface, proto.EncodeInterfaceReport(report))
}

//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) computeInterface(d topology.Direction) {
	st := n.dir(d)
	comps := make([]core.Component, 0, n.maxLayer-n.ownLayer+1)
	demands := make([]int, 0, len(n.children))
	for _, c := range n.children {
		demands = append(demands, st.demand[c])
	}
	comps = append(comps, core.OwnLayerComponent(demands))
	for layer := n.ownLayer + 1; layer <= n.maxLayer; layer++ {
		children := make([]core.ChildComponent, 0, len(n.nonLeaf))
		byChild := make(map[topology.NodeID]core.Component)
		for _, c := range n.nonLeaf {
			ci, ok := st.childIfaces[c]
			if !ok {
				continue
			}
			idx := layer - ci.FirstLayer
			if idx < 0 || idx >= len(ci.Comps) || ci.Comps[idx].Empty() {
				continue
			}
			children = append(children, core.ChildComponent{Child: c, Comp: ci.Comps[idx]})
			byChild[c] = ci.Comps[idx]
		}
		comp, layout, err := core.Compose(children, n.frame.Channels)
		if err != nil {
			comp, layout = core.Component{}, core.Layout{}
		}
		comps = append(comps, comp)
		st.layouts[layer] = layout
		st.childComps[layer] = byChild
	}
	st.iface = proto.DirInterface{FirstLayer: n.ownLayer, Comps: comps}
}

// allocateRoot is the gateway's partition allocation (§IV-C).
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) allocateRoot() {
	up := core.Interface{Owner: n.id, FirstLayer: n.dir(topology.Uplink).iface.FirstLayer, Comps: n.dir(topology.Uplink).iface.Comps}
	down := core.Interface{Owner: n.id, FirstLayer: n.dir(topology.Downlink).iface.FirstLayer, Comps: n.dir(topology.Downlink).iface.Comps}
	alloc, err := core.AllocateRoot(up, down, n.frame, false, n.rootGap)
	if err != nil {
		n.reject()
		return
	}
	for dl, region := range alloc.Partitions {
		n.dir(dl.Direction).parts[dl.Layer] = region
	}
	n.settle()
}

// settle consumes this node's partitions: RM assignment at the own layer,
// splitting and dissemination at deeper layers (one POST /part per
// non-leaf child).
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) settle() {
	type grant struct {
		entries []proto.PartitionEntry
	}
	grants := make(map[topology.NodeID]*grant)
	for _, d := range topology.Directions() {
		st := n.dir(d)
		layers := sortedLayers(st.parts)
		for _, layer := range layers {
			region := st.parts[layer]
			if layer == n.ownLayer {
				n.assignOwn(d)
				continue
			}
			split, err := core.SplitPartition(region, st.layouts[layer], st.childComps[layer])
			if err != nil {
				continue
			}
			if st.sentRegions[layer] == nil {
				st.sentRegions[layer] = make(map[topology.NodeID]schedule.Region)
			}
			for child, r := range split {
				st.sentRegions[layer][child] = r
				if grants[child] == nil {
					grants[child] = &grant{}
				}
				grants[child].entries = append(grants[child].entries, proto.PartitionEntry{
					Direction: d, Layer: layer, Region: r,
				})
			}
		}
	}
	// Every non-leaf child gets a PartitionSet (possibly empty) so the
	// static phase terminates even in zero-demand subtrees.
	for _, c := range n.nonLeaf {
		g := grants[c]
		var entries []proto.PartitionEntry
		if g != nil {
			entries = g.entries
		}
		n.send(c, coap.POST, proto.PathPartition, proto.EncodePartitionSet(proto.PartitionSet{Entries: entries}))
	}
	if debugChecks {
		n.debugCheckAssignments("settle")
		for _, d := range topology.Directions() {
			for layer := range n.dir(d).parts {
				if layer != n.ownLayer {
					n.debugCheckGrants("settle", d, layer)
				}
			}
		}
	}
}

// onPartitionSet installs the partitions granted by the parent and
// continues the top-down phase. A duplicated delivery (every entry equal to
// the installed partition) is dropped: re-running settle would re-send the
// whole subtree's PartitionSets and amplify one duplicate into a flood.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) onPartitionSet(m proto.PartitionSet) {
	if n.settledOnce {
		dup := true
		for _, e := range m.Entries {
			if cur, ok := n.dir(e.Direction).parts[e.Layer]; !ok || cur != e.Region {
				dup = false
				break
			}
		}
		if dup {
			return
		}
	}
	n.settledOnce = true
	for _, e := range m.Entries {
		n.dir(e.Direction).parts[e.Layer] = e.Region
	}
	n.settle()
}

// assignOwn runs RM assignment inside the own-layer partition and notifies
// children whose cells changed.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) assignOwn(d topology.Direction) {
	st := n.dir(d)
	region, ok := st.parts[n.ownLayer]
	demands := make([]core.LinkDemand, 0, len(n.children))
	total := 0
	for _, c := range n.children {
		demands = append(demands, core.LinkDemand{
			Link:    topology.Link{Child: c, Direction: d},
			Cells:   st.demand[c],
			TopRate: st.topRate[c],
		})
		total += st.demand[c]
	}
	if !ok {
		if total == 0 {
			st.assignment = make(map[topology.NodeID][]schedule.Cell)
		}
		return
	}
	assignment, err := core.AssignCells(region, demands)
	if err != nil {
		// Mid-adjustment underfit: the demands no longer fit the partition
		// (an escalation for the growth is in flight). The region itself may
		// still have moved with this grant, and the vacated slots can
		// already belong to a sibling — prune any cells the new region no
		// longer covers and tell those children. The escalation's final
		// grant re-runs the full assignment.
		for _, c := range n.children {
			cells := st.assignment[c]
			kept := cells[:0]
			for _, cell := range cells {
				if region.Contains(cell) {
					kept = append(kept, cell)
				}
			}
			if len(kept) == len(cells) {
				continue
			}
			st.assignment[c] = kept
			if tr := n.tracer; tr.Enabled() {
				tr.Emit(obs.Ev(obs.KindAgentAssign).WithNode(int(n.id)).WithPeer(int(c)).
					WithLayer(n.ownLayer).WithDetail(fmt.Sprintf("%s cells=%d", d, len(kept))))
			}
			n.send(c, coap.POST, proto.PathSchedule, proto.EncodeScheduleNotice(proto.ScheduleNotice{
				Direction: d, Cells: kept,
			}))
		}
		n.debugCheckAssignments("assignOwn")
		return
	}
	next := make(map[topology.NodeID][]schedule.Cell, len(assignment))
	for l, cells := range assignment {
		next[l.Child] = cells
	}
	for _, c := range n.children {
		if !cellsEqual(st.assignment[c], next[c]) {
			if tr := n.tracer; tr.Enabled() {
				tr.Emit(obs.Ev(obs.KindAgentAssign).WithNode(int(n.id)).WithPeer(int(c)).
					WithLayer(n.ownLayer).WithDetail(fmt.Sprintf("%s cells=%d", d, len(next[c]))))
			}
			n.send(c, coap.POST, proto.PathSchedule, proto.EncodeScheduleNotice(proto.ScheduleNotice{
				Direction: d, Cells: next[c],
			}))
		}
	}
	st.assignment = next
	n.debugCheckAssignments("assignOwn")
}

// debugCheckAssignments validates that every non-empty own-layer cell
// assignment sits inside the own-layer partition, in both directions. This
// must hold at every quiescent point of the protocol, even mid-adjustment.
// Compiled out unless built with -tags harpdebug; callers hold n.mu.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) debugCheckAssignments(op string) {
	if !debugChecks {
		return
	}
	for _, d := range topology.Directions() {
		st := n.dir(d)
		own, hasOwn := st.parts[n.ownLayer]
		for child, cells := range st.assignment {
			if len(cells) == 0 {
				continue
			}
			if !hasOwn {
				panic(fmt.Sprintf("harpdebug: node %d after %s: %s cells for child %d without an own-layer partition",
					n.id, op, d, child))
			}
			for _, c := range cells {
				if !own.Contains(c) {
					panic(fmt.Sprintf("harpdebug: node %d after %s: %s cell %v for child %d outside partition %v",
						n.id, op, d, c, child, own))
				}
			}
		}
	}
}

// debugCheckGrants validates the grants a node just (re)computed for one
// layer in one direction: each child's region inside the node's partition
// at that layer, and the regions pairwise disjoint. Only the layer just
// modified is checked — grants at other layers are a send-dedup cache and
// may legitimately be stale until that layer's own partition update
// arrives. Compiled out unless built with -tags harpdebug; callers hold
// n.mu.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) debugCheckGrants(op string, d topology.Direction, layer int) {
	if !debugChecks {
		return
	}
	st := n.dir(d)
	byChild := st.sentRegions[layer]
	region, ok := st.parts[layer]
	ids := make([]topology.NodeID, 0, len(byChild))
	for child, r := range byChild {
		if r.Empty() {
			continue
		}
		if !ok || !region.ContainsRegion(r) {
			panic(fmt.Sprintf("harpdebug: node %d after %s: granted %v to child %d outside its layer-%d %s partition",
				n.id, op, r, child, layer, d))
		}
		ids = append(ids, child)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if byChild[ids[i]].Overlaps(byChild[ids[j]]) {
				panic(fmt.Sprintf("harpdebug: node %d after %s: grants to children %d and %d overlap at layer %d %s",
					n.id, op, ids[i], ids[j], layer, d))
			}
		}
	}
}

func dirIfaceEqual(a, b proto.DirInterface) bool {
	if a.FirstLayer != b.FirstLayer || a.OwnDemand != b.OwnDemand || len(a.Comps) != len(b.Comps) {
		return false
	}
	for i := range a.Comps {
		if a.Comps[i] != b.Comps[i] {
			return false
		}
	}
	return true
}

func cellsEqual(a, b []schedule.Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedLayers(m map[int]schedule.Region) []int {
	out := make([]int, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// SetChildDemand is the traffic-change entry point (§V): the parent of the
// affected link updates the requirement and performs local schedule update,
// or escalates a partition adjustment.
func (n *Node) SetChildDemand(child topology.NodeID, d topology.Direction, cells int, topRate float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !containsNode(n.children, child) {
		return fmt.Errorf("agent: node %d has no child %d", n.id, child)
	}
	if cells < 0 {
		return fmt.Errorf("agent: negative demand %d", cells)
	}
	n.applyChildDemand(child, d, cells, topRate)
	return nil
}

// applyChildDemand is SetChildDemand's body; callers hold n.mu.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) applyChildDemand(child topology.NodeID, d topology.Direction, cells int, topRate float64) {
	st := n.dir(d)
	old := st.demand[child]
	oldRate := st.topRate[child]
	st.demand[child] = cells
	st.topRate[child] = topRate
	if cells <= old {
		n.assignOwn(d) // Release: cells freed locally.
		return
	}
	total := 0
	for _, c := range n.children {
		total += st.demand[c]
	}
	if region, ok := st.parts[n.ownLayer]; ok && total <= region.CellCount() {
		n.assignOwn(d) // Case 1: local schedule update.
		return
	}
	// Case 2: escalate with the grown own-layer component. The increase is
	// provisional until the parent grants the space; snapshot the old value
	// so an unreachable parent's give-up can revert it.
	if _, ok := st.pendingDemand[child]; !ok {
		st.pendingDemand[child] = demandSnapshot{cells: old, topRate: oldRate}
	}
	if n.vnow != nil && st.demandSince == 0 {
		st.demandSince = n.vnow()
	}
	n.escalate(d, n.ownLayer, core.Component{Slots: total, Channels: 1})
}

// escalate requests a grown component at the given layer from the parent,
// or — at the gateway — widens its own layer partition in place.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) escalate(d topology.Direction, layer int, comp core.Component) {
	n.metrics.Inc(obs.LayerKey(int(n.id), layer, obs.MetricEscalations))
	if n.isGateway() {
		if tr := n.tracer; tr.Enabled() {
			tr.Emit(obs.Ev(obs.KindAgentEscalate).WithNode(int(n.id)).WithLayer(layer).
				WithDetail(fmt.Sprintf("%s root-widen slots=%d ch=%d", d, comp.Slots, comp.Channels)))
		}
		if !n.rootWiden(d, layer, comp) {
			n.reject()
		}
		return
	}
	if tr := n.tracer; tr.Enabled() {
		sp := tr.Emit(obs.Ev(obs.KindAgentEscalate).WithNode(int(n.id)).WithPeer(int(n.parent)).
			WithLayer(layer).WithDetail(fmt.Sprintf("%s slots=%d ch=%d", d, comp.Slots, comp.Channels)))
		tr.Push(sp)
		defer tr.Pop()
	}
	n.send(n.parent, coap.PUT, proto.PathInterface, proto.EncodeAdjustRequest(proto.AdjustRequest{
		Origin: n.id, Direction: d, Layer: layer, Comp: comp,
	}))
}

// RequestDemand is the child-initiated traffic-change request of the
// paper's flowchart (Fig. 8(b)): the node noticing increased queueing on
// its own link sends a PUT /intf carrying the new requirement to its
// parent, which absorbs it locally or escalates. cells is the requested
// demand of this node's own link in the given direction.
func (n *Node) RequestDemand(d topology.Direction, cells int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isGateway() {
		return fmt.Errorf("agent: gateway has no own link")
	}
	if cells < 0 {
		return fmt.Errorf("agent: negative demand %d", cells)
	}
	n.send(n.parent, coap.PUT, proto.PathInterface, proto.EncodeAdjustRequest(proto.AdjustRequest{
		Origin:    n.id,
		Direction: d,
		Layer:     n.ownLayer - 1, // the layer of this node's link to its parent
		Comp:      core.Component{Slots: cells, Channels: 1},
	}))
	return nil
}

// onAdjustRequest handles a child's PUT /intf: feasibility test (Problem 2)
// plus the cost-aware adjustment (Alg. 2), escalating when the local
// partition cannot host the increase.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) onAdjustRequest(from topology.NodeID, m proto.AdjustRequest) {
	layer := m.Layer
	if layer == n.ownLayer && containsNode(n.children, from) {
		// A child reports a new requirement for its own link (RequestDemand):
		// this is a link-demand change handled exactly like SetChildDemand.
		n.applyChildDemand(from, m.Direction, m.Comp.Slots, float64(m.Comp.Slots))
		return
	}
	n.hostChildComponent(from, m.Direction, layer, m.Comp)
}

// hostChildComponent places a child's (grown or newly appearing) component
// at one layer: Alg. 2 inside the current partition when possible,
// otherwise minimal extension and escalation (or in-place extension at the
// gateway).
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) hostChildComponent(from topology.NodeID, d topology.Direction, layer int, comp core.Component) {
	st := n.dir(d)
	if cur, ok := st.childComps[layer][from]; ok && cur == comp {
		if _, granted := st.sentRegions[layer][from]; granted {
			return // already hosted unchanged (e.g. a rejoining child): re-laying out would shuffle siblings
		}
	}
	if _, busy := st.pendingLayouts[layer]; busy {
		// An escalation for this layer is in flight: its pending layout was
		// computed without this request, and recomputing now would clobber
		// it. Queue the request; applyPartition replays it after the grant.
		st.deferred[layer] = append(st.deferred[layer], deferredAdjust{from: from, comp: comp})
		return
	}
	if region, ok := st.parts[layer]; ok {
		newLayout, moved, fits := core.AdjustLayout(region.Slots, region.Channels,
			st.layouts[layer], st.childComps[layer], from, comp)
		if fits {
			if st.childComps[layer] == nil {
				st.childComps[layer] = make(map[topology.NodeID]core.Component)
			}
			st.childComps[layer][from] = comp
			st.layouts[layer] = newLayout
			if st.sentRegions[layer] == nil {
				st.sentRegions[layer] = make(map[topology.NodeID]schedule.Region)
			}
			for _, child := range moved {
				c := st.childComps[layer][child]
				off := newLayout[child]
				r := c.Region(region.Slot+off.Slot, region.Channel+off.Channel)
				st.sentRegions[layer][child] = r
				n.send(child, coap.PUT, proto.PathPartition, proto.EncodePartitionUpdate(proto.PartitionUpdate{
					Direction: d, Layer: layer, Region: r,
				}))
			}
			n.debugCheckGrants("hostChildComponent", d, layer)
			return
		}
	}
	if n.isGateway() {
		// End of the line: extend the layer partition in place.
		if !n.rootHost(d, layer, from, comp) {
			n.reject()
		}
		return
	}
	// Grow this node's component at the layer just enough to host the
	// increase, keeping siblings in place, and escalate the enlarged
	// component; the new layout commits when the parent grants the space.
	merged := make(map[topology.NodeID]core.Component, len(st.childComps[layer])+1)
	for id, c := range st.childComps[layer] {
		merged[id] = c
	}
	merged[from] = comp
	var hostComp core.Component
	if region, ok := st.parts[layer]; ok {
		hostComp = core.Component{Slots: region.Slots, Channels: region.Channels}
	}
	grown, layout, ok := core.MinimalExtension(hostComp, st.layouts[layer], st.childComps[layer], from, comp, n.frame.Channels)
	if !ok {
		n.reject()
		return
	}
	st.pendingComps[layer] = merged
	st.pendingLayouts[layer] = layout
	if n.vnow != nil {
		if st.pendingSince == nil {
			st.pendingSince = make(map[int]float64)
		}
		st.pendingSince[layer] = n.vnow()
	}
	n.escalate(d, layer, grown)
}

// onChildLeave handles DELETE /intf: the child (and its subtree) detached —
// the release case of §V. Its components disappear from every layer; the
// freed cells stay idle inside this branch's partitions, and the own-layer
// schedule shrinks.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) onChildLeave(from topology.NodeID) {
	if !containsNode(n.children, from) {
		return
	}
	if tr := n.tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentLeave).WithNode(int(n.id)).WithPeer(int(from)))
	}
	n.children = removeNode(n.children, from)
	n.nonLeaf = removeNode(n.nonLeaf, from)
	for _, d := range topology.Directions() {
		st := n.dir(d)
		delete(st.demand, from)
		delete(st.topRate, from)
		delete(st.childIfaces, from)
		for layer := range st.childComps {
			delete(st.childComps[layer], from)
		}
		for layer := range st.layouts {
			delete(st.layouts[layer], from)
		}
		for layer := range st.sentRegions {
			delete(st.sentRegions[layer], from)
		}
		n.assignOwn(d)
	}
}

// onChildJoin handles a Join-flagged POST /intf: a node (with its subtree)
// attached under this node after a topology change. Every layer of the
// reported interface is hosted through the ordinary adjustment machinery,
// then the new link's demand is absorbed like a traffic change.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) onChildJoin(m proto.InterfaceReport) {
	// A Join from a node already in children is a crashed child rejoining
	// (a reparented node arrives unknown): after hosting it, re-send the
	// state its reboot lost, which the send-dedup caches would suppress.
	rejoining := containsNode(n.children, m.Owner)
	// This node is about to host a child: a former leaf has all-nil maps.
	n.dir(topology.Uplink).ensure()
	n.dir(topology.Downlink).ensure()
	if tr := n.tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentJoin).WithNode(int(n.id)).WithPeer(int(m.Owner)).
			WithDetail(fmt.Sprintf("rejoin=%t", rejoining)))
	}
	if !rejoining {
		n.children = insertNode(n.children, m.Owner)
	}
	dirIfaces := [2]proto.DirInterface{m.Up, m.Down}
	hasComps := false
	for _, di := range dirIfaces {
		for _, c := range di.Comps {
			if !c.Empty() {
				hasComps = true
			}
		}
	}
	if hasComps {
		if !containsNode(n.nonLeaf, m.Owner) {
			n.nonLeaf = insertNode(n.nonLeaf, m.Owner)
		}
		n.dir(topology.Uplink).childIfaces[m.Owner] = m.Up
		n.dir(topology.Downlink).childIfaces[m.Owner] = m.Down
	}
	for _, d := range topology.Directions() {
		di := dirIfaces[d]
		for i, comp := range di.Comps {
			if comp.Empty() {
				continue
			}
			n.hostChildComponent(m.Owner, d, di.FirstLayer+i, comp)
		}
		if rejoining && n.dir(d).demand[m.Owner] == di.OwnDemand {
			// A rebooted child reporting its configured demand: this node's
			// stored demand and top rate are already authoritative (the Join
			// report carries no rate), so re-applying would only perturb the
			// cell assignment with the float64(cells) rate fallback.
			continue
		}
		n.applyChildDemand(m.Owner, d, di.OwnDemand, float64(di.OwnDemand))
	}
	if rejoining {
		n.resyncChild(m.Owner)
	}
}

// resyncChild re-sends a rejoining child's current grants and own-link
// cells. The child's reboot wiped them, but this node's send-dedup caches
// (sentRegions, the cellsEqual check) see no change and would stay silent;
// the child's duplicate guards make the re-sends safe if it did not
// actually reboot.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) resyncChild(child topology.NodeID) {
	for _, d := range topology.Directions() {
		st := n.dir(d)
		layers := make([]int, 0, len(st.sentRegions))
		for layer := range st.sentRegions {
			if _, ok := st.sentRegions[layer][child]; ok {
				layers = append(layers, layer)
			}
		}
		sort.Ints(layers)
		for _, layer := range layers {
			n.send(child, coap.PUT, proto.PathPartition, proto.EncodePartitionUpdate(proto.PartitionUpdate{
				Direction: d, Layer: layer, Region: st.sentRegions[layer][child],
			}))
		}
		if cells := st.assignment[child]; len(cells) > 0 {
			n.send(child, coap.POST, proto.PathSchedule, proto.EncodeScheduleNotice(proto.ScheduleNotice{
				Direction: d, Cells: cells,
			}))
		}
	}
}

func removeNode(ids []topology.NodeID, id topology.NodeID) []topology.NodeID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func insertNode(ids []topology.NodeID, id topology.NodeID) []topology.NodeID {
	out := append(ids, id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Root-level adjustment at the gateway agent mirrors the centralized
// planner: layer partitions are an ordered sequence of slot intervals
// (compliant order, time-disjoint because adjacent layers share nodes); a
// grown layer extends in place and later intervals shift only as far as
// needed.

// rootIntervals snapshots the gateway's layer partitions.
func (n *Node) rootIntervals() (map[core.DirLayer]int, map[core.DirLayer]int) {
	widths := make(map[core.DirLayer]int)
	chans := make(map[core.DirLayer]int)
	for _, dd := range topology.Directions() {
		for l, r := range n.dir(dd).parts {
			k := core.DirLayer{Direction: dd, Layer: l}
			widths[k] = r.Slots
			chans[k] = r.Channels
		}
	}
	return widths, chans
}

func totalWidth(widths map[core.DirLayer]int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total
}

// reflowRoot lays the layer partitions out as ordered intervals with
// minimal movement and applies the changed ones (applyPartition skips
// descendants whose regions are unchanged).
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) reflowRoot(widths, chans map[core.DirLayer]int, target core.DirLayer) bool {
	comps := make(map[core.DirLayer]core.Component, len(widths))
	for k, w := range widths {
		comps[k] = core.Component{Slots: w, Channels: chans[k]}
	}
	cursor := 0
	type placement struct {
		key    core.DirLayer
		region schedule.Region
	}
	var changed []placement
	for _, k := range core.CompliantOrder(comps) {
		w := widths[k]
		if w == 0 {
			continue
		}
		origin := cursor
		if old, ok := n.dir(k.Direction).parts[k.Layer]; ok && old.Slot >= cursor && old.Slot+w <= n.frame.DataSlots {
			origin = old.Slot
		}
		if origin+w > n.frame.DataSlots {
			return false
		}
		region := schedule.Region{Slot: origin, Channel: 0, Slots: w, Channels: chans[k]}
		cursor = origin + w
		if old, ok := n.dir(k.Direction).parts[k.Layer]; !ok || old != region || k == target {
			changed = append(changed, placement{key: k, region: region})
		}
	}
	for _, pl := range changed {
		n.applyPartition(pl.key.Direction, pl.key.Layer, pl.region)
	}
	return true
}

// rootWiden grows the gateway's own-layer partition to the requested width.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) rootWiden(d topology.Direction, layer int, comp core.Component) bool {
	widths, chans := n.rootIntervals()
	key := core.DirLayer{Direction: d, Layer: layer}
	widths[key] = comp.Slots
	chans[key] = comp.Channels
	if totalWidth(widths) > n.frame.DataSlots {
		return false
	}
	return n.reflowRoot(widths, chans, key)
}

// rootHost extends the gateway's layer partition just enough to host a
// grown child component, keeping that layer's other children in place.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) rootHost(d topology.Direction, layer int, cur topology.NodeID, curComp core.Component) bool {
	if curComp.Channels > n.frame.Channels {
		return false
	}
	st := n.dir(d)
	widths, chans := n.rootIntervals()
	key := core.DirLayer{Direction: d, Layer: layer}
	baseWidth := widths[key]
	otherTotal := totalWidth(widths) - baseWidth
	maxWidth := n.frame.DataSlots - otherTotal

	area := curComp.Cells()
	for id, c := range st.childComps[layer] {
		if id != cur {
			area += c.Cells()
		}
	}
	start := (area + n.frame.Channels - 1) / n.frame.Channels
	if start < baseWidth {
		start = baseWidth
	}
	if start < curComp.Slots {
		start = curComp.Slots
	}
	for width := start; width <= maxWidth; width++ {
		newLayout, _, ok := core.AdjustLayout(width, n.frame.Channels,
			st.layouts[layer], st.childComps[layer], cur, curComp)
		if !ok {
			continue
		}
		if st.childComps[layer] == nil {
			st.childComps[layer] = make(map[topology.NodeID]core.Component)
		}
		st.childComps[layer][cur] = curComp
		st.layouts[layer] = newLayout
		widths[key] = width
		chans[key] = n.frame.Channels
		return n.reflowRoot(widths, chans, key)
	}
	return false
}

// onPartitionUpdate applies a PUT /part from the parent. An update carrying
// the already-installed region is a duplicate: a genuine grant after an
// escalation always differs from the current region (the escalated
// component did not fit in it), so an identical region carries no new
// information — and applying it could wrongly commit a pending
// recomposition belonging to a newer escalation at the same layer.
func (n *Node) onPartitionUpdate(m proto.PartitionUpdate) {
	if cur, ok := n.dir(m.Direction).parts[m.Layer]; ok && cur == m.Region {
		return
	}
	n.applyPartition(m.Direction, m.Layer, m.Region)
}

// applyPartition installs a new partition at one layer, committing any
// pending recomposition, and pushes the consequences downward.
//
//harplint:locked — caller holds n.mu (Handle/Deploy own the critical section).
func (n *Node) applyPartition(d topology.Direction, layer int, region schedule.Region) {
	st := n.dir(d)
	st.parts[layer] = region
	if tr := n.tracer; tr.Enabled() {
		tr.Emit(obs.Ev(obs.KindAgentGrant).WithNode(int(n.id)).WithLayer(layer).
			WithDetail(fmt.Sprintf("%s slot=%d slots=%d ch=%d", d, region.Slot, region.Slots, region.Channels)))
	}
	if pl, ok := st.pendingLayouts[layer]; ok {
		st.layouts[layer] = pl
		st.childComps[layer] = st.pendingComps[layer]
		delete(st.pendingLayouts, layer)
		delete(st.pendingComps, layer)
		if since, stamped := st.pendingSince[layer]; stamped && n.vnow != nil {
			// Escalation→commit latency: from hosting the escalated child
			// component (the pendingSince stamp) to this grant committing
			// the recomposition, in milli-slots.
			n.metrics.Dist(obs.Key(obs.MetricEscCommitMs)).Observe(int64((n.vnow() - since) * 1000))
		}
		n.metrics.Inc(obs.NodeKey(int(n.id), obs.MetricCommits))
		if tr := n.tracer; tr.Enabled() {
			tr.Emit(obs.Ev(obs.KindAgentCommit).WithNode(int(n.id)).WithLayer(layer).WithDetail(d.String()))
		}
	}
	delete(st.pendingSince, layer)
	if n.giveUps != nil {
		// A grant proves the parent reachable: future give-ups to it count
		// as fresh degradations.
		delete(n.giveUps, giveUpKey{peer: n.parent, d: d, layer: layer})
		delete(n.giveUps, giveUpKey{peer: n.parent, report: true})
	}
	if layer == n.ownLayer {
		// The grant commits any provisionally raised link demands.
		for c := range st.pendingDemand {
			delete(st.pendingDemand, c)
		}
		st.demandSince = 0
		n.assignOwn(d)
		return
	}
	split, err := core.SplitPartition(region, st.layouts[layer], st.childComps[layer])
	if err != nil {
		return
	}
	if st.sentRegions[layer] == nil {
		st.sentRegions[layer] = make(map[topology.NodeID]schedule.Region)
	}
	for _, child := range sortedRegionIDs(split) {
		r := split[child]
		if prev, ok := st.sentRegions[layer][child]; ok && prev == r {
			continue // unchanged: no message
		}
		st.sentRegions[layer][child] = r
		n.send(child, coap.PUT, proto.PathPartition, proto.EncodePartitionUpdate(proto.PartitionUpdate{
			Direction: d, Layer: layer, Region: r,
		}))
	}
	n.debugCheckGrants("applyPartition", d, layer)
	// Replay adjust requests that queued behind the just-committed
	// escalation; against the new partition they either fit or escalate
	// afresh.
	if q := st.deferred[layer]; len(q) > 0 {
		delete(st.deferred, layer)
		for _, da := range q {
			n.hostChildComponent(da.from, d, layer, da.comp)
		}
	}
}

// Leave announces this node's detachment to its current parent (the
// DELETE /intf of a parent switch) without touching local state; the fleet
// rewires the structure afterwards.
func (n *Node) Leave() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isGateway() {
		return
	}
	n.send(n.parent, coap.DELETE, proto.PathInterface, nil)
}

// setStructure installs recomputed tree coordinates after a topology
// change.
func (n *Node) setStructure(parent topology.NodeID, ownLayer, maxLayer int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if parent != n.parent {
		// A new parent means past degradations no longer describe the
		// current uplink.
		clear(n.giveUps)
	}
	n.parent = parent
	n.ownLayer = ownLayer
	n.maxLayer = maxLayer
}

// resetResources clears all layer-keyed resource state (used when a moved
// subtree re-joins at a different depth). Link demands are preserved.
func (n *Node) resetResources() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, d := range topology.Directions() {
		st := n.dir(d)
		// Wipe everything but the configured link demands (reloaded by the
		// caller) and the granted own-link cells; a leaf drops back to all-nil
		// maps, a parent gets fresh empty ones.
		*st = dirState{demand: st.demand, topRate: st.topRate, myCells: st.myCells}
		if len(n.children) > 0 {
			st.ensure()
		}
	}
	n.settledOnce = false
	clear(n.giveUps)
}

// startJoin primes the node to re-attach: its next interface report carries
// the Join flag and the given own-link demands, and nodes whose children
// are all leaves recompute immediately (deeper subtrees report bottom-up).
func (n *Node) startJoin(upDemand, downDemand int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.joining = true
	n.joinDemand[topology.Uplink] = upDemand
	n.joinDemand[topology.Downlink] = downDemand
	if len(n.nonLeaf) == 0 {
		n.computeAndForwardInterface()
	}
}

// Snapshot accessors (used by the fleet and tests).

// Assignment returns the node's RM cell assignment for its child links in
// one direction.
func (n *Node) Assignment(d topology.Direction) map[topology.NodeID][]schedule.Cell {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[topology.NodeID][]schedule.Cell, len(n.dir(d).assignment))
	for c, cells := range n.dir(d).assignment {
		out[c] = append([]schedule.Cell(nil), cells...)
	}
	return out
}

// Partition returns the node's granted partition at a layer.
func (n *Node) Partition(d topology.Direction, layer int) (schedule.Region, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.dir(d).parts[layer]
	return r, ok
}

// MyCells returns the cells granted by the parent for this node's own link.
func (n *Node) MyCells(d topology.Direction) []schedule.Cell {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]schedule.Cell(nil), n.dir(d).myCells...)
}

func containsNode(ids []topology.NodeID, id topology.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func sortedRegionIDs(m map[topology.NodeID]schedule.Region) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
