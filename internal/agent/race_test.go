package agent_test

// Race-focused deployment test: a full 50-node fleet on the
// goroutine-per-node transport with adjustment requests fired from many
// client goroutines at once. Run under -race (the CI gate does) this
// exercises every lock in Node, Fleet and Live concurrently; the invariant
// checker then confirms the fleet settled into a consistent, collision-free
// state.

import (
	"sync"
	"testing"
	"time"

	"github.com/harpnet/harp/internal/agent"
	"github.com/harpnet/harp/internal/invariant"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
	"github.com/harpnet/harp/internal/transport"
)

func TestFleetConcurrentAdjustments(t *testing.T) {
	tree := topology.Testbed50()
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		t.Fatal(err)
	}
	live := transport.NewLive()
	defer live.Close()
	fleet, err := agent.Deploy(tree, integrationFrame(), demand, live)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Start()
	if !live.WaitIdle(10 * time.Second) {
		t.Fatal("static phase did not converge")
	}
	if err := invariant.CheckFleet(fleet, nil); err != nil {
		t.Fatalf("after static phase: %v", err)
	}

	// Three rounds of concurrent demand changes on disjoint links, raised
	// from separate goroutines like independent management clients. Each
	// round must leave the fleet in a valid, invariant-satisfying state.
	links := []topology.Link{
		{Child: 10, Direction: topology.Uplink},
		{Child: 11, Direction: topology.Downlink},
		{Child: 12, Direction: topology.Uplink},
		{Child: 13, Direction: topology.Downlink},
		{Child: 14, Direction: topology.Uplink},
		{Child: 15, Direction: topology.Uplink},
		{Child: 16, Direction: topology.Downlink},
		{Child: 17, Direction: topology.Uplink},
	}
	for round, cells := range []int{4, 2, 5} {
		var wg sync.WaitGroup
		errs := make([]error, len(links))
		for i, l := range links {
			wg.Add(1)
			go func(i int, l topology.Link) {
				defer wg.Done()
				// Alternate between parent-side and child-side entry points:
				// both paths must be safe concurrently.
				if i%2 == 0 {
					errs[i] = fleet.SetLinkDemand(l, cells, float64(cells))
				} else {
					errs[i] = fleet.RequestLinkDemand(l, cells)
				}
			}(i, l)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d link %v: %v", round, links[i], err)
			}
		}
		if !live.WaitIdle(10 * time.Second) {
			t.Fatalf("round %d did not converge", round)
		}
		if err := fleet.Validate(); err != nil {
			t.Fatalf("round %d: fleet invalid: %v", round, err)
		}
		if err := invariant.CheckFleet(fleet, nil); err != nil {
			t.Fatalf("round %d: invariants violated: %v", round, err)
		}
	}
	if fleet.Rejections() != 0 {
		t.Fatalf("feasible concurrent demands rejected %d times", fleet.Rejections())
	}
}
