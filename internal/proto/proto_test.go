package proto

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/topology"
)

func TestInterfaceReportRoundTrip(t *testing.T) {
	m := InterfaceReport{
		Owner: 7,
		Up:    DirInterface{FirstLayer: 2, Comps: []core.Component{{Slots: 5, Channels: 1}, {Slots: 3, Channels: 2}}},
		Down:  DirInterface{FirstLayer: 2, Comps: []core.Component{{Slots: 4, Channels: 1}}},
	}
	back, err := DecodeInterfaceReport(EncodeInterfaceReport(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Owner != m.Owner || back.Up.FirstLayer != 2 || len(back.Up.Comps) != 2 || len(back.Down.Comps) != 1 {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.Up.Comps[1] != (core.Component{Slots: 3, Channels: 2}) {
		t.Errorf("component mismatch: %v", back.Up.Comps[1])
	}
}

func TestInterfaceReportEmptyDirections(t *testing.T) {
	m := InterfaceReport{Owner: 1}
	back, err := DecodeInterfaceReport(EncodeInterfaceReport(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Up.Comps) != 0 || len(back.Down.Comps) != 0 {
		t.Errorf("empty interfaces mismatched: %+v", back)
	}
}

func TestAdjustRequestRoundTrip(t *testing.T) {
	m := AdjustRequest{Origin: 30, Direction: topology.Downlink, Layer: 4, Comp: core.Component{Slots: 3, Channels: 1}}
	back, err := DecodeAdjustRequest(EncodeAdjustRequest(m))
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip: %+v != %+v", back, m)
	}
}

func TestPartitionSetRoundTrip(t *testing.T) {
	m := PartitionSet{Entries: []PartitionEntry{
		{Direction: topology.Uplink, Layer: 2, Region: schedule.Region{Slot: 10, Channel: 0, Slots: 6, Channels: 1}},
		{Direction: topology.Downlink, Layer: 3, Region: schedule.Region{Slot: 80, Channel: 4, Slots: 2, Channels: 2}},
	}}
	back, err := DecodePartitionSet(EncodePartitionSet(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Entries[1] != m.Entries[1] {
		t.Errorf("round trip: %+v", back)
	}
	empty, err := DecodePartitionSet(EncodePartitionSet(PartitionSet{}))
	if err != nil || len(empty.Entries) != 0 {
		t.Errorf("empty set: %+v, %v", empty, err)
	}
}

func TestPartitionUpdateRoundTrip(t *testing.T) {
	m := PartitionUpdate{Direction: topology.Uplink, Layer: 5, Region: schedule.Region{Slot: 3, Channel: 1, Slots: 4, Channels: 2}}
	back, err := DecodePartitionUpdate(EncodePartitionUpdate(m))
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip: %+v != %+v", back, m)
	}
}

func TestScheduleNoticeRoundTrip(t *testing.T) {
	m := ScheduleNotice{Direction: topology.Downlink, Cells: []schedule.Cell{{Slot: 9, Channel: 3}, {Slot: 10, Channel: 3}}}
	back, err := DecodeScheduleNotice(EncodeScheduleNotice(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Direction != m.Direction || len(back.Cells) != 2 || back.Cells[1] != m.Cells[1] {
		t.Errorf("round trip: %+v", back)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	short := []byte{0x00}
	if _, err := DecodeInterfaceReport(short); !errors.Is(err, ErrDecode) {
		t.Errorf("interface: want ErrDecode, got %v", err)
	}
	if _, err := DecodeAdjustRequest(short); !errors.Is(err, ErrDecode) {
		t.Errorf("adjust: want ErrDecode, got %v", err)
	}
	if _, err := DecodePartitionSet(short); !errors.Is(err, ErrDecode) {
		t.Errorf("set: want ErrDecode, got %v", err)
	}
	if _, err := DecodePartitionUpdate(short); !errors.Is(err, ErrDecode) {
		t.Errorf("update: want ErrDecode, got %v", err)
	}
	if _, err := DecodeScheduleNotice(short); !errors.Is(err, ErrDecode) {
		t.Errorf("sched: want ErrDecode, got %v", err)
	}
	// Trailing bytes rejected.
	good := EncodeAdjustRequest(AdjustRequest{Origin: 1})
	if _, err := DecodeAdjustRequest(append(good, 0x00)); !errors.Is(err, ErrDecode) {
		t.Errorf("trailing: want ErrDecode, got %v", err)
	}
	// Invalid direction rejected.
	bad := EncodeAdjustRequest(AdjustRequest{Origin: 1, Direction: topology.Direction(3)})
	if _, err := DecodeAdjustRequest(bad); !errors.Is(err, ErrDecode) {
		t.Errorf("direction: want ErrDecode, got %v", err)
	}
	badSched := EncodeScheduleNotice(ScheduleNotice{Direction: topology.Direction(5)})
	if _, err := DecodeScheduleNotice(badSched); !errors.Is(err, ErrDecode) {
		t.Errorf("sched direction: want ErrDecode, got %v", err)
	}
	// Absurd counts rejected (corrupted length prefix).
	if _, err := DecodePartitionSet([]byte{0xFF, 0xFF}); !errors.Is(err, ErrDecode) {
		t.Errorf("huge count: want ErrDecode, got %v", err)
	}
}

func TestRoundTripPropertyAllMessages(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		comp := func() core.Component {
			return core.Component{Slots: rng.Intn(200), Channels: rng.Intn(16)}
		}
		rpt := InterfaceReport{
			Owner: topology.NodeID(rng.Intn(500)),
			Up:    DirInterface{FirstLayer: rng.Intn(10), Comps: []core.Component{comp(), comp()}},
			Down:  DirInterface{FirstLayer: rng.Intn(10), Comps: []core.Component{comp()}},
		}
		backR, err := DecodeInterfaceReport(EncodeInterfaceReport(rpt))
		if err != nil || backR.Owner != rpt.Owner || len(backR.Up.Comps) != 2 {
			return false
		}
		for i := range rpt.Up.Comps {
			if backR.Up.Comps[i] != rpt.Up.Comps[i] {
				return false
			}
		}
		upd := PartitionUpdate{
			Direction: topology.Direction(rng.Intn(2)),
			Layer:     rng.Intn(12),
			Region: schedule.Region{
				Slot: rng.Intn(200), Channel: rng.Intn(16),
				Slots: rng.Intn(200), Channels: rng.Intn(16),
			},
		}
		backU, err := DecodePartitionUpdate(EncodePartitionUpdate(upd))
		return err == nil && backU == upd
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
