// Package proto defines the HARP protocol messages and their binary
// payload encodings. The messages map one-to-one onto the CoAP handlers of
// Table I in the paper:
//
//	POST /intf  — InterfaceReport: a child reports its resource interface
//	PUT  /intf  — AdjustRequest: a child requests a grown component
//	POST /part  — PartitionSet: a parent grants partitions at all layers
//	PUT  /part  — PartitionUpdate: a parent updates one layer's partition
//
// plus the cell-assignment notification of §IV-D (sent by a parent after
// Rate-Monotonic scheduling inside its own-layer partition):
//
//	POST /sched — ScheduleNotice: the cells granted to one child link
//
// Payloads use a compact big-endian binary encoding suitable for the
// constrained devices the paper targets; all multi-byte fields are uint16.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/topology"
)

// URI paths of the HARP resources (Table I).
const (
	PathInterface = "intf"
	PathPartition = "part"
	PathSchedule  = "sched"
	// PathKeepalive is the failure detector's empty POST probe. It is not
	// part of Table I: keepalives are control traffic, carried as
	// background (uncounted) sends so protocol-overhead counts stay
	// comparable with the paper's.
	PathKeepalive = "ka"
)

// ErrDecode wraps all payload decoding failures.
var ErrDecode = errors.New("proto: malformed payload")

// DirInterface is one direction's slice of a resource interface.
type DirInterface struct {
	FirstLayer int
	Comps      []core.Component
	// OwnDemand is the cell requirement of the sender's own link to its
	// parent in this direction. The static phase ignores it (parents learn
	// link demands at bootstrap); a node (re)joining dynamically — e.g.
	// after an RPL parent switch — carries it so the new parent can grow
	// its own-layer partition.
	OwnDemand int
}

// InterfaceReport is the POST /intf payload: the sender's resource
// interface for both directions.
type InterfaceReport struct {
	Owner topology.NodeID
	Up    DirInterface
	Down  DirInterface
	// Join marks a dynamic (re)join after a topology change, as opposed to
	// a static bootstrap report.
	Join bool
}

// AdjustRequest is the PUT /intf payload: the sender's component at one
// layer grew and no longer fits its partition.
type AdjustRequest struct {
	Origin    topology.NodeID
	Direction topology.Direction
	Layer     int
	Comp      core.Component
}

// PartitionEntry places one layer's partition in the slotframe.
type PartitionEntry struct {
	Direction topology.Direction
	Layer     int
	Region    schedule.Region
}

// PartitionSet is the POST /part payload: the full set of partitions
// granted to a subtree root.
type PartitionSet struct {
	Entries []PartitionEntry
}

// PartitionUpdate is the PUT /part payload: a single adjusted partition.
type PartitionUpdate PartitionEntry

// ScheduleNotice is the POST /sched payload: the cells a parent assigned to
// the link shared with the receiving child.
type ScheduleNotice struct {
	Direction topology.Direction
	Cells     []schedule.Cell
}

// writer accumulates big-endian uint16 fields.
type writer struct{ buf []byte }

func (w *writer) u16(v int) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v))
}

// reader consumes big-endian uint16 fields.
type reader struct{ buf []byte }

func (r *reader) u16() (int, error) {
	if len(r.buf) < 2 {
		return 0, ErrTruncatedPayload()
	}
	v := int(binary.BigEndian.Uint16(r.buf[:2]))
	r.buf = r.buf[2:]
	return v, nil
}

func (r *reader) done() error {
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(r.buf))
	}
	return nil
}

// ErrTruncatedPayload returns a wrapped truncation error.
func ErrTruncatedPayload() error { return fmt.Errorf("%w: truncated", ErrDecode) }

func writeDirInterface(w *writer, d DirInterface) {
	w.u16(d.FirstLayer)
	w.u16(d.OwnDemand)
	w.u16(len(d.Comps))
	for _, c := range d.Comps {
		w.u16(c.Slots)
		w.u16(c.Channels)
	}
}

func readDirInterface(r *reader) (DirInterface, error) {
	var d DirInterface
	var err error
	if d.FirstLayer, err = r.u16(); err != nil {
		return d, err
	}
	if d.OwnDemand, err = r.u16(); err != nil {
		return d, err
	}
	n, err := r.u16()
	if err != nil {
		return d, err
	}
	if n > 1<<12 {
		return d, fmt.Errorf("%w: %d components", ErrDecode, n)
	}
	d.Comps = make([]core.Component, n)
	for i := range d.Comps {
		if d.Comps[i].Slots, err = r.u16(); err != nil {
			return d, err
		}
		if d.Comps[i].Channels, err = r.u16(); err != nil {
			return d, err
		}
	}
	return d, nil
}

// EncodeInterfaceReport serialises an InterfaceReport.
func EncodeInterfaceReport(m InterfaceReport) []byte {
	var w writer
	w.u16(int(m.Owner))
	join := 0
	if m.Join {
		join = 1
	}
	w.u16(join)
	writeDirInterface(&w, m.Up)
	writeDirInterface(&w, m.Down)
	return w.buf
}

// DecodeInterfaceReport parses an InterfaceReport.
func DecodeInterfaceReport(b []byte) (InterfaceReport, error) {
	r := reader{buf: b}
	var m InterfaceReport
	owner, err := r.u16()
	if err != nil {
		return m, err
	}
	m.Owner = topology.NodeID(owner)
	join, err := r.u16()
	if err != nil {
		return m, err
	}
	if join > 1 {
		return m, fmt.Errorf("%w: join flag %d", ErrDecode, join)
	}
	m.Join = join == 1
	if m.Up, err = readDirInterface(&r); err != nil {
		return m, err
	}
	if m.Down, err = readDirInterface(&r); err != nil {
		return m, err
	}
	return m, r.done()
}

// EncodeAdjustRequest serialises an AdjustRequest.
func EncodeAdjustRequest(m AdjustRequest) []byte {
	var w writer
	w.u16(int(m.Origin))
	w.u16(int(m.Direction))
	w.u16(m.Layer)
	w.u16(m.Comp.Slots)
	w.u16(m.Comp.Channels)
	return w.buf
}

// DecodeAdjustRequest parses an AdjustRequest.
func DecodeAdjustRequest(b []byte) (AdjustRequest, error) {
	r := reader{buf: b}
	var m AdjustRequest
	fields := []*int{new(int), new(int), new(int), new(int), new(int)}
	for _, f := range fields {
		v, err := r.u16()
		if err != nil {
			return m, err
		}
		*f = v
	}
	if *fields[1] > 1 {
		return m, fmt.Errorf("%w: direction %d", ErrDecode, *fields[1])
	}
	m.Origin = topology.NodeID(*fields[0])
	m.Direction = topology.Direction(*fields[1])
	m.Layer = *fields[2]
	m.Comp = core.Component{Slots: *fields[3], Channels: *fields[4]}
	return m, r.done()
}

func writeEntry(w *writer, e PartitionEntry) {
	w.u16(int(e.Direction))
	w.u16(e.Layer)
	w.u16(e.Region.Slot)
	w.u16(e.Region.Channel)
	w.u16(e.Region.Slots)
	w.u16(e.Region.Channels)
}

func readEntry(r *reader) (PartitionEntry, error) {
	var e PartitionEntry
	vals := make([]int, 6)
	for i := range vals {
		v, err := r.u16()
		if err != nil {
			return e, err
		}
		vals[i] = v
	}
	if vals[0] > 1 {
		return e, fmt.Errorf("%w: direction %d", ErrDecode, vals[0])
	}
	e.Direction = topology.Direction(vals[0])
	e.Layer = vals[1]
	e.Region = schedule.Region{Slot: vals[2], Channel: vals[3], Slots: vals[4], Channels: vals[5]}
	return e, nil
}

// EncodePartitionSet serialises a PartitionSet.
func EncodePartitionSet(m PartitionSet) []byte {
	var w writer
	w.u16(len(m.Entries))
	for _, e := range m.Entries {
		writeEntry(&w, e)
	}
	return w.buf
}

// DecodePartitionSet parses a PartitionSet.
func DecodePartitionSet(b []byte) (PartitionSet, error) {
	r := reader{buf: b}
	n, err := r.u16()
	if err != nil {
		return PartitionSet{}, err
	}
	if n > 1<<12 {
		return PartitionSet{}, fmt.Errorf("%w: %d entries", ErrDecode, n)
	}
	m := PartitionSet{Entries: make([]PartitionEntry, n)}
	for i := range m.Entries {
		if m.Entries[i], err = readEntry(&r); err != nil {
			return PartitionSet{}, err
		}
	}
	return m, r.done()
}

// EncodePartitionUpdate serialises a PartitionUpdate.
func EncodePartitionUpdate(m PartitionUpdate) []byte {
	var w writer
	writeEntry(&w, PartitionEntry(m))
	return w.buf
}

// DecodePartitionUpdate parses a PartitionUpdate.
func DecodePartitionUpdate(b []byte) (PartitionUpdate, error) {
	r := reader{buf: b}
	e, err := readEntry(&r)
	if err != nil {
		return PartitionUpdate{}, err
	}
	return PartitionUpdate(e), r.done()
}

// EncodeScheduleNotice serialises a ScheduleNotice.
func EncodeScheduleNotice(m ScheduleNotice) []byte {
	var w writer
	w.u16(int(m.Direction))
	w.u16(len(m.Cells))
	for _, c := range m.Cells {
		w.u16(c.Slot)
		w.u16(c.Channel)
	}
	return w.buf
}

// DecodeScheduleNotice parses a ScheduleNotice.
func DecodeScheduleNotice(b []byte) (ScheduleNotice, error) {
	r := reader{buf: b}
	var m ScheduleNotice
	dir, err := r.u16()
	if err != nil {
		return m, err
	}
	if dir > 1 {
		return m, fmt.Errorf("%w: direction %d", ErrDecode, dir)
	}
	m.Direction = topology.Direction(dir)
	n, err := r.u16()
	if err != nil {
		return m, err
	}
	if n > 1<<12 {
		return m, fmt.Errorf("%w: %d cells", ErrDecode, n)
	}
	m.Cells = make([]schedule.Cell, n)
	for i := range m.Cells {
		if m.Cells[i].Slot, err = r.u16(); err != nil {
			return m, err
		}
		if m.Cells[i].Channel, err = r.u16(); err != nil {
			return m, err
		}
	}
	return m, r.done()
}
