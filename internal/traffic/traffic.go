// Package traffic models the periodic end-to-end tasks an industrial
// wireless network carries and derives per-link cell requirements from them.
//
// A task (paper §II-A) periodically samples a sensor, sends the reading
// along the uplink routing path to the gateway, and the gateway returns a
// control packet along the downlink path to an actuator. Task-level
// requirements are abstracted into link-level cell requirements r(e): every
// link on a task's path needs enough cells per slotframe to forward the
// task's packets, and requirements of tasks sharing a link accumulate.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/harpnet/harp/internal/topology"
)

// TaskID identifies a task.
type TaskID int

// Task is a periodic end-to-end flow. Rate is expressed in packets per
// slotframe, matching the paper's workload knob (e.g. Fig. 10 raises Node
// 15's rate from 1 to 1.5 to 3 packets/slotframe). Fractional rates are
// allowed; cell demand is the ceiling, since a cell is the indivisible
// resource unit.
type Task struct {
	ID       TaskID
	Source   topology.NodeID // sensing node (uplink origin)
	Actuator topology.NodeID // downlink destination; often == Source (e2e echo)
	Rate     float64         // packets per slotframe (> 0)
}

// CellDemand returns the number of cells per slotframe the task needs on
// every link of its path: ceil(Rate).
func (t Task) CellDemand() int {
	return int(math.Ceil(t.Rate))
}

// PeriodSlots returns the task period in time slots for a slotframe of the
// given length — the quantity Rate Monotonic scheduling prioritises by
// (shorter period first).
func (t Task) PeriodSlots(slotframeLen int) float64 {
	return float64(slotframeLen) / t.Rate
}

// String summarises the task endpoints, direction and period.
func (t Task) String() string {
	return fmt.Sprintf("task %d (src=%d act=%d rate=%.2f/sf)", t.ID, t.Source, t.Actuator, t.Rate)
}

// Validate checks the task against a topology.
func (t Task) Validate(tree *topology.Tree) error {
	if t.Rate <= 0 {
		return fmt.Errorf("traffic: %v has non-positive rate", t)
	}
	if !tree.Has(t.Source) {
		return fmt.Errorf("traffic: %v has unknown source", t)
	}
	if !tree.Has(t.Actuator) {
		return fmt.Errorf("traffic: %v has unknown actuator", t)
	}
	return nil
}

// Set is a collection of tasks keyed by ID.
type Set struct {
	tasks map[TaskID]Task
}

// NewSet returns an empty task set.
func NewSet() *Set { return &Set{tasks: make(map[TaskID]Task)} }

// ErrDuplicateTask is returned when adding a task whose ID already exists.
var ErrDuplicateTask = errors.New("traffic: duplicate task id")

// Add inserts a task.
func (s *Set) Add(t Task) error {
	if _, ok := s.tasks[t.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	s.tasks[t.ID] = t
	return nil
}

// Get returns the task with the given ID.
func (s *Set) Get(id TaskID) (Task, bool) {
	t, ok := s.tasks[id]
	return t, ok
}

// SetRate updates a task's rate in place — the traffic-change event that
// drives HARP's dynamic partition adjustment.
func (s *Set) SetRate(id TaskID, rate float64) error {
	t, ok := s.tasks[id]
	if !ok {
		return fmt.Errorf("traffic: unknown task %d", id)
	}
	if rate <= 0 {
		return fmt.Errorf("traffic: non-positive rate %.3f for task %d", rate, id)
	}
	t.Rate = rate
	s.tasks[id] = t
	return nil
}

// Remove deletes a task (a task-leave event; requirements only decrease, so
// HARP releases cells locally).
func (s *Set) Remove(id TaskID) {
	delete(s.tasks, id)
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.tasks) }

// Tasks returns the tasks sorted by ID.
func (s *Set) Tasks() []Task {
	out := make([]Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	for id, t := range s.tasks {
		c.tasks[id] = t
	}
	return c
}

// Validate checks every task against the topology.
func (s *Set) Validate(tree *topology.Tree) error {
	for _, t := range s.Tasks() {
		if err := t.Validate(tree); err != nil {
			return err
		}
	}
	return nil
}

// UniformEcho builds the testbed workload of §VI-B: one end-to-end echo task
// per non-gateway node, each at the given rate. Task IDs equal the source
// node IDs for readability.
func UniformEcho(tree *topology.Tree, rate float64) (*Set, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: non-positive rate %.3f", rate)
	}
	s := NewSet()
	for _, id := range tree.Nodes() {
		if id == topology.GatewayID {
			continue
		}
		if err := s.Add(Task{ID: TaskID(id), Source: id, Actuator: id, Rate: rate}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// PerLink builds a demand in which every link of the tree requires
// ceil(rate) cells in both directions, with no convergecast accumulation —
// the workload of the collision study (§VII-A), where "the data rate of
// each node" is a per-link quantity. A synthetic single-hop task per link
// carries the rate for Rate-Monotonic ordering.
func PerLink(tree *topology.Tree, rate float64) (*Demand, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: non-positive rate %.3f", rate)
	}
	d := &Demand{
		cells: make(map[topology.Link]int),
		flows: make(map[topology.Link][]Flow),
	}
	next := TaskID(1)
	for _, id := range tree.Nodes() {
		if id == topology.GatewayID {
			continue
		}
		for _, dir := range topology.Directions() {
			t := Task{ID: next, Source: id, Actuator: id, Rate: rate}
			next++
			d.add(topology.Link{Child: id, Direction: dir}, t)
		}
	}
	return d, nil
}

// FromCells wraps a raw link-to-cells map as a Demand, backing each link
// with a synthetic single-link task whose rate equals the cell count (so
// Rate-Monotonic ordering tracks demand). Useful when requirements come
// from protocol state rather than a task set.
func FromCells(cells map[topology.Link]int) *Demand {
	d := &Demand{
		cells: make(map[topology.Link]int, len(cells)),
		flows: make(map[topology.Link][]Flow, len(cells)),
	}
	next := TaskID(1)
	for l, c := range cells {
		if c <= 0 {
			continue
		}
		t := Task{ID: next, Source: l.Child, Actuator: l.Child, Rate: float64(c)}
		next++
		d.add(l, t)
		d.cells[l] = c // override the ceil-accumulated value with the exact count
	}
	return d
}

// Flow is one task's share of a link's cell requirement; it retains the task
// so per-link schedulers (e.g. Rate Monotonic) can prioritise by period.
type Flow struct {
	Task  Task
	Cells int
}

// Demand is the link-level cell requirement map r(e) plus the contributing
// flows per link.
type Demand struct {
	cells map[topology.Link]int
	flows map[topology.Link][]Flow
}

// Cells returns r(e) for the link (0 when no task crosses it).
func (d *Demand) Cells(l topology.Link) int { return d.cells[l] }

// Flows returns the tasks crossing the link, sorted by descending rate
// (ascending period), the Rate Monotonic priority order.
func (d *Demand) Flows(l topology.Link) []Flow {
	out := make([]Flow, len(d.flows[l]))
	copy(out, d.flows[l])
	return out
}

// Links returns every link with non-zero demand, sorted (uplinks before
// downlinks, then by child ID).
func (d *Demand) Links() []topology.Link {
	out := make([]topology.Link, 0, len(d.cells))
	for l := range d.cells {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Direction != b.Direction {
			return a.Direction < b.Direction
		}
		return a.Child < b.Child
	})
	return out
}

// TotalCells sums r(e) over all links — the slotframe load the collision
// study (Fig. 11) reports as "total number of cells required by all nodes".
func (d *Demand) TotalCells() int {
	total := 0
	for _, c := range d.cells {
		total += c
	}
	return total
}

// Compute derives link-level demand from a task set over a topology
// (§II-A): for each task, every uplink on the source→gateway path and every
// downlink on the gateway→actuator path needs ceil(rate) cells, and demands
// accumulate across tasks.
func Compute(tree *topology.Tree, tasks *Set) (*Demand, error) {
	if err := tasks.Validate(tree); err != nil {
		return nil, err
	}
	d := &Demand{
		cells: make(map[topology.Link]int),
		flows: make(map[topology.Link][]Flow),
	}
	for _, t := range tasks.Tasks() {
		up, err := tree.PathToGateway(t.Source)
		if err != nil {
			return nil, err
		}
		for _, hop := range up[:len(up)-1] { // exclude the gateway itself
			d.add(topology.Link{Child: hop, Direction: topology.Uplink}, t)
		}
		down, err := tree.PathToGateway(t.Actuator)
		if err != nil {
			return nil, err
		}
		for _, hop := range down[:len(down)-1] {
			d.add(topology.Link{Child: hop, Direction: topology.Downlink}, t)
		}
	}
	for l := range d.flows {
		flows := d.flows[l]
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].Task.Rate != flows[j].Task.Rate {
				return flows[i].Task.Rate > flows[j].Task.Rate
			}
			return flows[i].Task.ID < flows[j].Task.ID
		})
	}
	return d, nil
}

func (d *Demand) add(l topology.Link, t Task) {
	d.cells[l] += t.CellDemand()
	d.flows[l] = append(d.flows[l], Flow{Task: t, Cells: t.CellDemand()})
}
