package traffic

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/harpnet/harp/internal/topology"
)

func TestTaskCellDemand(t *testing.T) {
	cases := []struct {
		rate float64
		want int
	}{
		{1, 1}, {1.5, 2}, {3, 3}, {0.25, 1}, {7.01, 8},
	}
	for _, c := range cases {
		task := Task{Rate: c.rate}
		if got := task.CellDemand(); got != c.want {
			t.Errorf("CellDemand(rate=%.2f) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestTaskPeriodSlots(t *testing.T) {
	task := Task{Rate: 2}
	if got := task.PeriodSlots(200); got != 100 {
		t.Errorf("PeriodSlots = %.1f, want 100", got)
	}
}

func TestTaskValidate(t *testing.T) {
	tree := topology.Fig1()
	good := Task{ID: 1, Source: 8, Actuator: 8, Rate: 1}
	if err := good.Validate(tree); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []Task{
		{ID: 1, Source: 8, Actuator: 8, Rate: 0},
		{ID: 1, Source: 99, Actuator: 8, Rate: 1},
		{ID: 1, Source: 8, Actuator: 99, Rate: 1},
	}
	for _, b := range bad {
		if err := b.Validate(tree); err == nil {
			t.Errorf("invalid task accepted: %v", b)
		}
	}
	if good.String() == "" {
		t.Error("Task.String empty")
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet()
	if err := s.Add(Task{ID: 1, Source: 1, Actuator: 1, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Task{ID: 1, Source: 2, Actuator: 2, Rate: 1}); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("want ErrDuplicateTask, got %v", err)
	}
	if _, ok := s.Get(1); !ok {
		t.Error("Get(1) failed")
	}
	if err := s.SetRate(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(1); got.Rate != 2.5 {
		t.Errorf("rate after SetRate = %.2f, want 2.5", got.Rate)
	}
	if err := s.SetRate(9, 1); err == nil {
		t.Error("SetRate on unknown task accepted")
	}
	if err := s.SetRate(1, 0); err == nil {
		t.Error("SetRate zero accepted")
	}
	clone := s.Clone()
	if err := clone.SetRate(1, 5); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(1); got.Rate != 2.5 {
		t.Error("mutating clone affected original")
	}
	s.Remove(1)
	if s.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestUniformEcho(t *testing.T) {
	tree := topology.Fig1()
	s, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 11 {
		t.Errorf("tasks = %d, want 11 (every non-gateway node)", s.Len())
	}
	if err := s.Validate(tree); err != nil {
		t.Error(err)
	}
	if _, err := UniformEcho(tree, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestComputeDemandChain(t *testing.T) {
	// Chain 0 <- 1 <- 2 <- 3 with a single echo task at node 3, rate 1:
	// every uplink and downlink on the path needs exactly 1 cell.
	tree := topology.New()
	for i := topology.NodeID(1); i <= 3; i++ {
		if err := tree.AddNode(i, i-1); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSet()
	if err := s.Add(Task{ID: 1, Source: 3, Actuator: 3, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	d, err := Compute(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := topology.NodeID(1); i <= 3; i++ {
		for _, dir := range topology.Directions() {
			l := topology.Link{Child: i, Direction: dir}
			if d.Cells(l) != 1 {
				t.Errorf("Cells(%v) = %d, want 1", l, d.Cells(l))
			}
		}
	}
	if d.TotalCells() != 6 {
		t.Errorf("TotalCells = %d, want 6", d.TotalCells())
	}
	if got := len(d.Links()); got != 6 {
		t.Errorf("Links count = %d, want 6", got)
	}
}

func TestComputeDemandSubtreeSizes(t *testing.T) {
	// With one echo task per node at rate 1, a node's uplink demand equals
	// its subtree size (§VI-B: "the data rates of both uplink and downlink
	// of individual nodes equal to the size of their subtrees").
	tree := topology.Testbed50()
	s, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tree.Nodes() {
		if id == topology.GatewayID {
			continue
		}
		size, _ := tree.SubtreeSize(id)
		up := d.Cells(topology.Link{Child: id, Direction: topology.Uplink})
		down := d.Cells(topology.Link{Child: id, Direction: topology.Downlink})
		if up != size || down != size {
			t.Errorf("node %d: demand up=%d down=%d, want subtree size %d", id, up, down, size)
		}
	}
}

func TestComputeDemandFractionalRates(t *testing.T) {
	tree := topology.Fig1()
	s := NewSet()
	if err := s.Add(Task{ID: 1, Source: 8, Actuator: 8, Rate: 1.5}); err != nil {
		t.Fatal(err)
	}
	d, err := Compute(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	l := topology.Link{Child: 8, Direction: topology.Uplink}
	if d.Cells(l) != 2 {
		t.Errorf("fractional rate demand = %d, want ceil(1.5)=2", d.Cells(l))
	}
}

func TestComputeDemandRejectsInvalidTasks(t *testing.T) {
	tree := topology.Fig1()
	s := NewSet()
	if err := s.Add(Task{ID: 1, Source: 99, Actuator: 1, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(tree, s); err == nil {
		t.Error("Compute accepted task with unknown source")
	}
}

func TestFlowsSortedByRate(t *testing.T) {
	tree := topology.Fig1()
	s := NewSet()
	// Two tasks sharing link 1->gateway with different rates.
	if err := s.Add(Task{ID: 1, Source: 4, Actuator: 4, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Task{ID: 2, Source: 5, Actuator: 5, Rate: 3}); err != nil {
		t.Fatal(err)
	}
	d, err := Compute(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	flows := d.Flows(topology.Link{Child: 1, Direction: topology.Uplink})
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	if flows[0].Task.ID != 2 {
		t.Errorf("RM order wrong: first flow is task %d, want 2 (higher rate)", flows[0].Task.ID)
	}
	if d.Cells(topology.Link{Child: 1, Direction: topology.Uplink}) != 4 {
		t.Errorf("accumulated demand = %d, want 4", d.Cells(topology.Link{Child: 1, Direction: topology.Uplink}))
	}
}

func TestDemandPropertyConservation(t *testing.T) {
	// Total demand equals sum over tasks of ceil(rate) * (uplink hops +
	// downlink hops).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := topology.Generate(topology.GenSpec{Nodes: 15 + rng.Intn(30), Layers: 3}, rng)
		if err != nil {
			return false
		}
		s := NewSet()
		nodes := tree.Nodes()
		want := 0
		for i := 0; i < 5; i++ {
			src := nodes[1+rng.Intn(len(nodes)-1)]
			act := nodes[1+rng.Intn(len(nodes)-1)]
			rate := 0.5 + rng.Float64()*3
			task := Task{ID: TaskID(i), Source: src, Actuator: act, Rate: rate}
			if err := s.Add(task); err != nil {
				return false
			}
			ds, _ := tree.Depth(src)
			da, _ := tree.Depth(act)
			want += task.CellDemand() * (ds + da)
		}
		d, err := Compute(tree, s)
		if err != nil {
			return false
		}
		return d.TotalCells() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPerLinkDemand(t *testing.T) {
	tree := topology.Fig1()
	d, err := PerLink(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-gateway node's links carry exactly ceil(rate) cells, both
	// directions, no convergecast accumulation.
	for _, id := range tree.Nodes() {
		if id == topology.GatewayID {
			continue
		}
		for _, dir := range topology.Directions() {
			l := topology.Link{Child: id, Direction: dir}
			if d.Cells(l) != 3 {
				t.Errorf("Cells(%v) = %d, want 3", l, d.Cells(l))
			}
			flows := d.Flows(l)
			if len(flows) != 1 || flows[0].Task.Rate != 3 {
				t.Errorf("Flows(%v) = %+v", l, flows)
			}
		}
	}
	if d.TotalCells() != 11*2*3 {
		t.Errorf("TotalCells = %d, want 66", d.TotalCells())
	}
	if _, err := PerLink(tree, 0); err == nil {
		t.Error("zero rate accepted")
	}
	// Fractional rates round up.
	d2, err := PerLink(tree, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Cells(topology.Link{Child: 4, Direction: topology.Uplink}) != 2 {
		t.Error("fractional per-link rate not ceiled")
	}
}

func TestFromCells(t *testing.T) {
	cells := map[topology.Link]int{
		{Child: 1, Direction: topology.Uplink}:   4,
		{Child: 2, Direction: topology.Downlink}: 2,
		{Child: 3, Direction: topology.Uplink}:   0, // dropped
	}
	d := FromCells(cells)
	if got := d.Cells(topology.Link{Child: 1, Direction: topology.Uplink}); got != 4 {
		t.Errorf("Cells = %d, want 4", got)
	}
	if got := d.Cells(topology.Link{Child: 2, Direction: topology.Downlink}); got != 2 {
		t.Errorf("Cells = %d, want 2", got)
	}
	if len(d.Links()) != 2 {
		t.Errorf("Links = %v, want 2 entries (zero-cell dropped)", d.Links())
	}
	flows := d.Flows(topology.Link{Child: 1, Direction: topology.Uplink})
	if len(flows) != 1 || flows[0].Task.Rate != 4 {
		t.Errorf("flows = %+v, want one synthetic task at rate 4", flows)
	}
	if d.TotalCells() != 6 {
		t.Errorf("TotalCells = %d, want 6", d.TotalCells())
	}
}
