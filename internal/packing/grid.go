package packing

import (
	"fmt"

	"github.com/harpnet/harp/internal/bitset"
)

// Grid is an exact occupancy bitmap over a small width x height region. HARP
// partitions live inside a slotframe of at most a few hundred slots and 16
// channels, so an exact cell-level representation is cheap and lets the
// partition-adjustment heuristic (Alg. 2) pack new components into the idle
// area *around* partitions that stay in place — a variant of rectangle
// packing with obstacles that the skyline heuristic cannot express.
//
// Rows are stored as bit words (rowWords uint64s per row), so the placement
// scan tests a whole candidate window with a few word operations instead of a
// bool per cell: canPlace is a per-row range test, and PlaceBottomLeft ORs
// the candidate rows together once per y and jumps straight to the first
// free run. Bits at or beyond the width are never set, keeping popcounts
// exact.
//
// The zero value is unusable; construct with NewGrid.
type Grid struct {
	w, h     int
	rowWords int
	occ      []uint64 // row y: occ[y*rowWords : (y+1)*rowWords]
	scratch  []uint64 // row union buffer for PlaceBottomLeft
}

// NewGrid returns an empty grid of the given dimensions.
func NewGrid(width, height int) (*Grid, error) {
	if width <= 0 || height <= 0 {
		return nil, ErrBadInput
	}
	rw := bitset.Words(width)
	return &Grid{
		w: width, h: height, rowWords: rw,
		occ:     make([]uint64, height*rw),
		scratch: make([]uint64, rw),
	}, nil
}

// Width returns the grid width.
func (g *Grid) Width() int { return g.w }

// Height returns the grid height.
func (g *Grid) Height() int { return g.h }

// row returns row y's words.
func (g *Grid) row(y int) []uint64 { return g.occ[y*g.rowWords : (y+1)*g.rowWords] }

// Clone returns a deep copy, used for speculative packing during feasibility
// probing.
func (g *Grid) Clone() *Grid {
	occ := make([]uint64, len(g.occ))
	copy(occ, g.occ)
	return &Grid{
		w: g.w, h: g.h, rowWords: g.rowWords,
		occ:     occ,
		scratch: make([]uint64, g.rowWords),
	}
}

// Occupied reports whether cell (x, y) is occupied. Out-of-range coordinates
// count as occupied so boundary checks fall out naturally.
func (g *Grid) Occupied(x, y int) bool {
	if x < 0 || y < 0 || x >= g.w || y >= g.h {
		return true
	}
	return bitset.Get(g.row(y), x)
}

// FreeCells returns the number of unoccupied cells.
func (g *Grid) FreeCells() int {
	return g.w*g.h - bitset.OnesCount(g.occ)
}

// canPlace reports whether a w x h rectangle fits with bottom-left at (x, y).
func (g *Grid) canPlace(x, y, w, h int) bool {
	if x < 0 || y < 0 || x+w > g.w || y+h > g.h {
		return false
	}
	for yy := y; yy < y+h; yy++ {
		if bitset.AnyInRange(g.row(yy), x, x+w) {
			return false
		}
	}
	return true
}

func (g *Grid) fill(x, y, w, h int, v bool) {
	for yy := y; yy < y+h; yy++ {
		if v {
			bitset.SetRange(g.row(yy), x, x+w)
		} else {
			bitset.ClearRange(g.row(yy), x, x+w)
		}
	}
}

// AddObstacle marks a rectangle as occupied (an existing partition that must
// not move). It fails if the rectangle leaves the grid or overlaps an
// existing obstacle, which would indicate corrupted partition state upstream.
func (g *Grid) AddObstacle(x, y, w, h int) error {
	if w <= 0 || h <= 0 {
		return ErrBadInput
	}
	if !g.canPlace(x, y, w, h) {
		return fmt.Errorf("packing: obstacle (%d,%d %dx%d) out of bounds or overlapping", x, y, w, h)
	}
	g.fill(x, y, w, h, true)
	return nil
}

// RemoveObstacle clears a rectangle previously added with AddObstacle (used
// when Alg. 2 evicts a neighbouring partition to retry the packing).
func (g *Grid) RemoveObstacle(x, y, w, h int) {
	g.fill(x, y, w, h, false)
}

// PlaceBottomLeft finds the bottom-left-most free position for a w x h
// rectangle — scanning rows upward and columns leftward — occupies it and
// returns the position. ok is false when no position exists.
func (g *Grid) PlaceBottomLeft(w, h int) (x, y int, ok bool) {
	if w <= 0 || h <= 0 || w > g.w || h > g.h {
		return 0, 0, false
	}
	for yy := 0; yy+h <= g.h; yy++ {
		// A rectangle fits at x iff the OR of its h candidate rows has a
		// free w-run at x, so one union scan replaces the per-x rescans.
		copy(g.scratch, g.row(yy))
		for r := yy + 1; r < yy+h; r++ {
			bitset.Or(g.scratch, g.row(r))
		}
		if x, ok := bitset.FirstFreeRun(g.scratch, g.w, w); ok {
			g.fill(x, yy, w, h, true)
			return x, yy, true
		}
	}
	return 0, 0, false
}

// PackFreeSpace attempts to place all rects into the grid's free space,
// largest-area first (a robust ordering for bounded bins). On success the
// grid is updated and placements are returned; on failure the grid is left
// unmodified and ErrNoFit is returned.
func (g *Grid) PackFreeSpace(rects []Rect) ([]Placement, error) {
	for _, r := range rects {
		if r.W <= 0 || r.H <= 0 {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, r)
		}
	}
	trial := g.Clone()
	order := sortForPacking(rects)
	// Largest area first within the canonical order.
	placements := make([]Placement, 0, len(order))
	for _, r := range order {
		x, y, ok := trial.PlaceBottomLeft(r.W, r.H)
		if !ok {
			return nil, fmt.Errorf("%w: %v has no free position", ErrNoFit, r)
		}
		placements = append(placements, Placement{Rect: r, X: x, Y: y})
	}
	copy(g.occ, trial.occ)
	return placements, nil
}
