package packing

import (
	"fmt"
	"sort"
)

// segment is one horizontal piece of the skyline: the strip is covered from
// x to x+w at height y (the next free Y coordinate above already-placed
// rectangles).
type segment struct {
	x, w, y int
}

// skyline maintains the staircase profile of a partially packed strip, as in
// the improved best-fit skyline heuristic of Wei et al. (Comput. Oper. Res.
// 2017), the solver the HARP paper deploys on-device.
type skyline struct {
	width int
	segs  []segment
}

func newSkyline(width int) *skyline {
	return &skyline{width: width, segs: []segment{{x: 0, w: width, y: 0}}}
}

// lowest returns the index of the lowest segment, preferring the leftmost on
// ties; this is the placement candidate the best-fit rule evaluates next.
func (s *skyline) lowest() int {
	best := 0
	for i, seg := range s.segs {
		if seg.y < s.segs[best].y {
			best = i
		}
	}
	return best
}

// neighbourHeights returns the heights of the segments adjacent to segs[i];
// the strip boundary behaves like an infinitely tall wall.
func (s *skyline) neighbourHeights(i int) (left, right int) {
	const wall = int(^uint(0) >> 1) // max int
	left, right = wall, wall
	if i > 0 {
		left = s.segs[i-1].y
	}
	if i < len(s.segs)-1 {
		right = s.segs[i+1].y
	}
	return left, right
}

// raise lifts segs[i] to the lower of its two neighbours and merges; called
// when no remaining rectangle fits the lowest segment (wasted area).
func (s *skyline) raise(i int) {
	left, right := s.neighbourHeights(i)
	to := left
	if right < to {
		to = right
	}
	s.segs[i].y = to
	s.merge()
}

// place puts a rectangle of size w x h with its bottom-left corner at the
// left end of segs[i], updating the skyline.
func (s *skyline) place(i int, w, h int) (x, y int) {
	seg := s.segs[i]
	x, y = seg.x, seg.y
	if w > seg.w {
		panic(fmt.Sprintf("packing: internal error, rect width %d exceeds segment width %d", w, seg.w))
	}
	placed := segment{x: seg.x, w: w, y: seg.y + h}
	if w == seg.w {
		s.segs[i] = placed
	} else {
		rest := segment{x: seg.x + w, w: seg.w - w, y: seg.y}
		s.segs[i] = placed
		s.segs = append(s.segs, segment{})
		copy(s.segs[i+2:], s.segs[i+1:])
		s.segs[i+1] = rest
	}
	s.merge()
	return x, y
}

// merge coalesces adjacent segments of equal height.
func (s *skyline) merge() {
	merged := s.segs[:1]
	for _, seg := range s.segs[1:] {
		last := &merged[len(merged)-1]
		if last.y == seg.y {
			last.w += seg.w
		} else {
			merged = append(merged, seg)
		}
	}
	s.segs = merged
}

// height is the maximum skyline elevation, i.e. the strip height used so far.
func (s *skyline) height() int {
	h := 0
	for _, seg := range s.segs {
		if seg.y > h {
			h = seg.y
		}
	}
	return h
}

// bestFitIndex selects, among unplaced rectangles, the best fit for segment
// seg under the classic best-fit scoring: prefer the rectangle whose width
// exactly matches the segment, otherwise the widest that fits; ties are
// broken by the taller rectangle, then by lower ID for determinism. Returns
// -1 if nothing fits.
func bestFitIndex(rects []Rect, used []bool, seg segment) int {
	best := -1
	for i, r := range rects {
		if used[i] || r.W > seg.w {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		b := rects[best]
		exactR, exactB := r.W == seg.w, b.W == seg.w
		switch {
		case exactR && !exactB:
			best = i
		case exactB && !exactR:
			// keep best
		case r.W != b.W:
			if r.W > b.W {
				best = i
			}
		case r.H != b.H:
			if r.H > b.H {
				best = i
			}
		}
	}
	return best
}

// PackStrip solves the strip packing problem heuristically: pack all rects
// into a strip of the given width, minimising the used height. The returned
// layout contains a placement for every input rectangle (inputs may repeat
// IDs; placements preserve input order of discovery, not input order).
//
// This is the solver invoked twice by HARP's resource-component composition
// (Alg. 1): first with the channel budget as the width to minimise slots,
// then with the minimal slot count as the width to minimise channels.
func PackStrip(rects []Rect, stripWidth int) (Layout, error) {
	if err := checkInput(rects, stripWidth); err != nil {
		return Layout{}, err
	}
	layout := Layout{W: stripWidth, Items: make([]Placement, 0, len(rects))}
	if len(rects) == 0 {
		return layout, nil
	}
	sorted := sortForPacking(rects)
	used := make([]bool, len(sorted))
	sky := newSkyline(stripWidth)
	remaining := len(sorted)
	for remaining > 0 {
		li := sky.lowest()
		ri := bestFitIndex(sorted, used, sky.segs[li])
		if ri == -1 {
			sky.raise(li)
			continue
		}
		r := sorted[ri]
		x, y := sky.place(li, r.W, r.H)
		layout.Items = append(layout.Items, Placement{Rect: r, X: x, Y: y})
		used[ri] = true
		remaining--
	}
	layout.H = sky.height()
	return layout, nil
}

// PackBin attempts to pack all rects into a fixed width x height bin using
// the skyline heuristic. It returns ErrNoFit when the heuristic cannot fit
// the input (which, the heuristic being incomplete, may occasionally occur
// for feasible instances — the trade-off the paper accepts for on-device
// execution). This is HARP's feasibility test (Problem 2, RPP).
func PackBin(rects []Rect, width, height int) (Layout, error) {
	if height <= 0 {
		return Layout{}, ErrBadInput
	}
	layout, err := PackStrip(rects, width)
	if err != nil {
		return Layout{}, err
	}
	if layout.H > height {
		return Layout{}, fmt.Errorf("%w: need height %d, have %d", ErrNoFit, layout.H, height)
	}
	layout.H = height
	return layout, nil
}

// Fits reports whether rects fit into a width x height bin per the skyline
// heuristic. A convenience wrapper over PackBin for feasibility-only callers.
func Fits(rects []Rect, width, height int) bool {
	_, err := PackBin(rects, width, height)
	return err == nil
}

// MinStripHeight returns only the height of the skyline packing, for callers
// that need the composite dimension without the layout.
func MinStripHeight(rects []Rect, stripWidth int) (int, error) {
	layout, err := PackStrip(rects, stripWidth)
	if err != nil {
		return 0, err
	}
	return layout.H, nil
}

// sortSegments is a test helper ordering segments by x.
func sortSegments(segs []segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].x < segs[j].x })
}
