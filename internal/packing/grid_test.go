package packing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput, got %v", err)
	}
	g, err := NewGrid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != 4 || g.Height() != 3 {
		t.Errorf("dims = %dx%d, want 4x3", g.Width(), g.Height())
	}
	if g.FreeCells() != 12 {
		t.Errorf("free = %d, want 12", g.FreeCells())
	}
}

func TestGridObstacles(t *testing.T) {
	g, err := NewGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddObstacle(1, 1, 2, 2); err != nil {
		t.Fatalf("AddObstacle: %v", err)
	}
	if !g.Occupied(1, 1) || !g.Occupied(2, 2) {
		t.Error("obstacle cells not occupied")
	}
	if g.Occupied(0, 0) {
		t.Error("free cell reported occupied")
	}
	if !g.Occupied(-1, 0) || !g.Occupied(0, 5) {
		t.Error("out-of-range cells must count as occupied")
	}
	if err := g.AddObstacle(2, 2, 2, 2); err == nil {
		t.Error("overlapping obstacle accepted")
	}
	if err := g.AddObstacle(4, 4, 2, 2); err == nil {
		t.Error("out-of-bounds obstacle accepted")
	}
	if err := g.AddObstacle(0, 0, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero-size obstacle: want ErrBadInput, got %v", err)
	}
	g.RemoveObstacle(1, 1, 2, 2)
	if g.Occupied(1, 1) {
		t.Error("RemoveObstacle did not clear cells")
	}
}

func TestGridPlaceBottomLeft(t *testing.T) {
	g, _ := NewGrid(4, 4)
	x, y, ok := g.PlaceBottomLeft(2, 2)
	if !ok || x != 0 || y != 0 {
		t.Fatalf("first placement = (%d,%d,%v), want (0,0,true)", x, y, ok)
	}
	x, y, ok = g.PlaceBottomLeft(2, 2)
	if !ok || x != 2 || y != 0 {
		t.Fatalf("second placement = (%d,%d,%v), want (2,0,true)", x, y, ok)
	}
	x, y, ok = g.PlaceBottomLeft(4, 2)
	if !ok || x != 0 || y != 2 {
		t.Fatalf("third placement = (%d,%d,%v), want (0,2,true)", x, y, ok)
	}
	if _, _, ok = g.PlaceBottomLeft(1, 1); ok {
		t.Error("placement into full grid succeeded")
	}
	if _, _, ok = g.PlaceBottomLeft(0, 1); ok {
		t.Error("zero-size placement succeeded")
	}
}

func TestGridPackFreeSpaceAroundObstacles(t *testing.T) {
	// 6x4 grid with a 2x4 wall in the middle: two 2x4 free columns remain.
	g, _ := NewGrid(6, 4)
	if err := g.AddObstacle(2, 0, 2, 4); err != nil {
		t.Fatal(err)
	}
	placements, err := g.PackFreeSpace(rects([2]int{2, 4}, [2]int{2, 4}))
	if err != nil {
		t.Fatalf("PackFreeSpace: %v", err)
	}
	if len(placements) != 2 {
		t.Fatalf("placements = %d, want 2", len(placements))
	}
	for _, p := range placements {
		if p.X == 2 || p.X == 3 {
			t.Errorf("placement %+v overlaps obstacle", p)
		}
	}
	if g.FreeCells() != 0 {
		t.Errorf("free cells = %d, want 0", g.FreeCells())
	}
}

func TestGridPackFreeSpaceFailureLeavesGridUntouched(t *testing.T) {
	g, _ := NewGrid(4, 4)
	if err := g.AddObstacle(0, 0, 4, 2); err != nil {
		t.Fatal(err)
	}
	before := g.FreeCells()
	_, err := g.PackFreeSpace(rects([2]int{4, 3}))
	if !errors.Is(err, ErrNoFit) {
		t.Fatalf("want ErrNoFit, got %v", err)
	}
	if g.FreeCells() != before {
		t.Error("failed PackFreeSpace modified the grid")
	}
	if _, err := g.PackFreeSpace(rects([2]int{0, 3})); !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput, got %v", err)
	}
}

func TestGridClone(t *testing.T) {
	g, _ := NewGrid(3, 3)
	c := g.Clone()
	if _, _, ok := c.PlaceBottomLeft(3, 3); !ok {
		t.Fatal("clone placement failed")
	}
	if g.FreeCells() != 9 {
		t.Error("mutating clone affected original")
	}
}

func TestGridPackFreeSpacePropertyNoOverlap(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, h := 4+r.Intn(12), 4+r.Intn(12)
		g, err := NewGrid(w, h)
		if err != nil {
			return false
		}
		// Random obstacles.
		obstacles := make([]Placement, 0, 3)
		for i := 0; i < 3; i++ {
			ow, oh := 1+r.Intn(3), 1+r.Intn(3)
			ox, oy := r.Intn(w-ow+1), r.Intn(h-oh+1)
			if g.AddObstacle(ox, oy, ow, oh) == nil {
				obstacles = append(obstacles, Placement{Rect: Rect{W: ow, H: oh}, X: ox, Y: oy})
			}
		}
		rs := randomRects(r, 1+r.Intn(6), 3, 3)
		placements, err := g.PackFreeSpace(rs)
		if err != nil {
			return errors.Is(err, ErrNoFit) // failing to fit is acceptable
		}
		// No placement may overlap another placement or an obstacle.
		all := append(append([]Placement{}, obstacles...), placements...)
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].Overlaps(all[j]) {
					return false
				}
			}
		}
		for _, p := range placements {
			if p.X < 0 || p.Y < 0 || p.X+p.W > w || p.Y+p.H > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackStripBottomLeftBaseline(t *testing.T) {
	rs := rects([2]int{2, 2}, [2]int{2, 2}, [2]int{4, 1})
	layout, err := PackStripBottomLeft(rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.Validate(); err != nil {
		t.Error(err)
	}
	if layout.H != 3 {
		t.Errorf("bottom-left height = %d, want 3", layout.H)
	}
	if _, err := PackStripBottomLeft(rects([2]int{9, 1}), 4); !errors.Is(err, ErrTooWide) {
		t.Errorf("want ErrTooWide, got %v", err)
	}
	empty, err := PackStripBottomLeft(nil, 4)
	if err != nil || empty.H != 0 {
		t.Errorf("empty bottom-left packing: %v %v", empty, err)
	}
}

func TestBottomLeftPropertyValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 2 + r.Intn(16)
		rs := randomRects(r, 1+r.Intn(20), width, 8)
		layout, err := PackStripBottomLeft(rs, width)
		if err != nil {
			return false
		}
		return layout.Validate() == nil && len(layout.Items) == len(rs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := Placement{Rect: Rect{ID: 7, W: 3, H: 2}, X: 1, Y: 1}
	if !p.Contains(1, 1) || !p.Contains(3, 2) {
		t.Error("Contains failed for interior points")
	}
	if p.Contains(4, 1) || p.Contains(1, 3) || p.Contains(0, 0) {
		t.Error("Contains accepted exterior points")
	}
	if got := (Rect{ID: 7, W: 3, H: 2}).String(); got == "" {
		t.Error("String is empty")
	}
	if (Rect{W: 3, H: 2}).Area() != 6 {
		t.Error("Area wrong")
	}
}
