package packing

import (
	"errors"
	"testing"
)

// rectsFromBytes derives a bounded rectangle set from fuzz input: each
// byte pair becomes one rectangle with dimensions in [1,16].
func rectsFromBytes(data []byte) []Rect {
	const maxRects = 24
	var rects []Rect
	for i := 0; i+1 < len(data) && len(rects) < maxRects; i += 2 {
		rects = append(rects, Rect{
			ID: len(rects),
			W:  int(data[i]%16) + 1,
			H:  int(data[i+1]%16) + 1,
		})
	}
	return rects
}

// FuzzPackStrip asserts the skyline strip packer's postconditions on
// arbitrary inputs: no panic, and every produced layout validates (in
// bounds, pairwise disjoint) and contains every input rectangle exactly
// once — the properties partition composition (Alg. 1) depends on.
func FuzzPackStrip(f *testing.F) {
	f.Add([]byte{}, uint8(8))
	f.Add([]byte{3, 4, 5, 6, 1, 1}, uint8(8))
	f.Add([]byte{15, 15, 15, 15, 15, 15, 15, 15}, uint8(16))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, widthByte uint8) {
		rects := rectsFromBytes(data)
		stripWidth := int(widthByte%32) + 1
		layout, err := PackStrip(rects, stripWidth)
		if err != nil {
			if errors.Is(err, ErrTooWide) || errors.Is(err, ErrBadInput) {
				return // correct refusal
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		if err := layout.Validate(); err != nil {
			t.Fatalf("invalid layout for %v in width %d: %v", rects, stripWidth, err)
		}
		if len(layout.Items) != len(rects) {
			t.Fatalf("packed %d of %d rects", len(layout.Items), len(rects))
		}
		for _, r := range rects {
			p, ok := layout.Find(r.ID)
			if !ok {
				t.Fatalf("rect %d missing from layout", r.ID)
			}
			if p.W != r.W || p.H != r.H {
				t.Fatalf("rect %d resized: %dx%d -> %dx%d", r.ID, r.W, r.H, p.W, p.H)
			}
		}
	})
}

// FuzzGridPack asserts the free-space packer's postconditions with an
// obstacle present, mirroring how MinimalExtension packs around partitions
// that must not move: placements stay in bounds, avoid the obstacle and
// avoid each other; on failure the grid is untouched.
func FuzzGridPack(f *testing.F) {
	f.Add([]byte{3, 4, 5, 6}, uint8(10), uint8(10), uint8(2), uint8(2))
	f.Add([]byte{15, 15}, uint8(4), uint8(4), uint8(0), uint8(0))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(6), uint8(3), uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, wByte, hByte, ox, oy uint8) {
		width := int(wByte%24) + 1
		height := int(hByte%24) + 1
		g, err := NewGrid(width, height)
		if err != nil {
			t.Fatalf("NewGrid(%d,%d): %v", width, height, err)
		}
		obstacle := Placement{Rect: Rect{ID: -1, W: 1, H: 1}, X: int(ox) % width, Y: int(oy) % height}
		if err := g.AddObstacle(obstacle.X, obstacle.Y, obstacle.W, obstacle.H); err != nil {
			t.Fatalf("in-bounds obstacle rejected: %v", err)
		}
		freeBefore := g.FreeCells()
		rects := rectsFromBytes(data)
		placements, err := g.PackFreeSpace(rects)
		if err != nil {
			if !errors.Is(err, ErrNoFit) && !errors.Is(err, ErrBadInput) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if g.FreeCells() != freeBefore {
				t.Fatalf("failed pack mutated the grid: %d -> %d free cells", freeBefore, g.FreeCells())
			}
			return
		}
		if len(placements) != len(rects) {
			t.Fatalf("placed %d of %d rects", len(placements), len(rects))
		}
		for i, p := range placements {
			if p.X < 0 || p.Y < 0 || p.X+p.W > width || p.Y+p.H > height {
				t.Fatalf("placement %v outside %dx%d grid", p, width, height)
			}
			if p.Overlaps(obstacle) {
				t.Fatalf("placement %v overlaps obstacle %v", p, obstacle)
			}
			for j := i + 1; j < len(placements); j++ {
				if p.Overlaps(placements[j]) {
					t.Fatalf("placements %v and %v overlap", p, placements[j])
				}
			}
		}
	})
}
