// Package packing implements the two-dimensional packing primitives HARP is
// built on: the best-fit skyline heuristic for the strip packing problem
// (SPP) used by resource-component composition (Alg. 1 of the paper), a
// rectangle-packing feasibility test (Problem 2), a grid-based free-space
// packer used by the partition-adjustment heuristic (Alg. 2), and a classic
// bottom-left packer kept as an ablation baseline.
//
// Conventions: the strip grows upward, so a placement (X, Y) is the
// bottom-left corner of a rectangle, X ∈ [0, stripWidth) and Y ≥ 0. Callers
// map HARP's (slot, channel) dimensions onto (width, height) as needed; this
// package is dimension-agnostic.
package packing

import (
	"errors"
	"fmt"
	"sort"
)

// Rect is an axis-aligned rectangle to be packed. ID is an opaque caller
// identifier preserved in the resulting placement so callers can map results
// back to their own objects (e.g. a subtree's resource component).
type Rect struct {
	ID int
	W  int // width (> 0)
	H  int // height (> 0)
}

// Area returns W*H.
func (r Rect) Area() int { return r.W * r.H }

// String renders the rectangle with its ID and dimensions.
func (r Rect) String() string { return fmt.Sprintf("rect(id=%d %dx%d)", r.ID, r.W, r.H) }

// Placement is a packed rectangle: the input Rect plus its bottom-left
// position inside the strip or bin.
type Placement struct {
	Rect
	X int
	Y int
}

// Overlaps reports whether two placements share any interior area.
func (p Placement) Overlaps(q Placement) bool {
	return p.X < q.X+q.W && q.X < p.X+p.W && p.Y < q.Y+q.H && q.Y < p.Y+p.H
}

// Contains reports whether (x, y) lies inside the placement.
func (p Placement) Contains(x, y int) bool {
	return x >= p.X && x < p.X+p.W && y >= p.Y && y < p.Y+p.H
}

// Layout is the result of a packing run: the bounding dimensions actually
// used and the placement of every input rectangle.
type Layout struct {
	W     int // strip width the packing was performed against
	H     int // height actually used (max over placements of Y+H)
	Items []Placement
}

// Find returns the placement with the given rect ID.
func (l Layout) Find(id int) (Placement, bool) {
	for _, p := range l.Items {
		if p.Rect.ID == id {
			return p, true
		}
	}
	return Placement{}, false
}

// Validate checks structural invariants of the layout: every placement is
// inside [0, W) x [0, H) and no two placements overlap. It is used by tests
// and by debug assertions in higher layers.
func (l Layout) Validate() error {
	for i, p := range l.Items {
		if p.W <= 0 || p.H <= 0 {
			return fmt.Errorf("packing: item %d has non-positive size %dx%d", i, p.W, p.H)
		}
		if p.X < 0 || p.Y < 0 || p.X+p.W > l.W || p.Y+p.H > l.H {
			return fmt.Errorf("packing: item %d (%d,%d %dx%d) outside %dx%d bounds",
				i, p.X, p.Y, p.W, p.H, l.W, l.H)
		}
		for j := i + 1; j < len(l.Items); j++ {
			if p.Overlaps(l.Items[j]) {
				return fmt.Errorf("packing: items %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// Errors returned by the packers.
var (
	// ErrTooWide indicates some rectangle is wider than the strip.
	ErrTooWide = errors.New("packing: rectangle wider than strip")
	// ErrNoFit indicates a bounded bin could not accommodate the input.
	ErrNoFit = errors.New("packing: rectangles do not fit in the bin")
	// ErrBadInput indicates a non-positive dimension in the input.
	ErrBadInput = errors.New("packing: rectangle or bin with non-positive dimension")
)

func checkInput(rects []Rect, stripWidth int) error {
	if stripWidth <= 0 {
		return ErrBadInput
	}
	for _, r := range rects {
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("%w: %v", ErrBadInput, r)
		}
		if r.W > stripWidth {
			return fmt.Errorf("%w: %v exceeds strip width %d", ErrTooWide, r, stripWidth)
		}
	}
	return nil
}

// totalArea sums the area of all rectangles; used as a cheap lower bound.
func totalArea(rects []Rect) int {
	total := 0
	for _, r := range rects {
		total += r.Area()
	}
	return total
}

// sortForPacking orders rectangles in the canonical best-fit skyline order:
// non-increasing height, ties broken by non-increasing width then ID, which
// keeps runs deterministic for identical inputs.
func sortForPacking(rects []Rect) []Rect {
	sorted := make([]Rect, len(rects))
	copy(sorted, rects)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.H != b.H {
			return a.H > b.H
		}
		if a.W != b.W {
			return a.W > b.W
		}
		return a.ID < b.ID
	})
	return sorted
}
