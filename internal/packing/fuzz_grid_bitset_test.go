package packing

import "testing"

// boolGrid is the pre-bitset reference implementation of Grid: a bool per
// cell, scanned cell by cell. The fuzz target below drives both through the
// same operation sequence and diffs every observable, so the word-parallel
// implementation can never silently diverge from the simple semantics the
// grid tests pin.
type boolGrid struct {
	w, h int
	occ  []bool
}

func newBoolGrid(w, h int) *boolGrid {
	return &boolGrid{w: w, h: h, occ: make([]bool, w*h)}
}

func (g *boolGrid) occupied(x, y int) bool {
	if x < 0 || y < 0 || x >= g.w || y >= g.h {
		return true
	}
	return g.occ[y*g.w+x]
}

func (g *boolGrid) freeCells() int {
	n := 0
	for _, o := range g.occ {
		if !o {
			n++
		}
	}
	return n
}

func (g *boolGrid) canPlace(x, y, w, h int) bool {
	if x < 0 || y < 0 || x+w > g.w || y+h > g.h {
		return false
	}
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			if g.occ[yy*g.w+xx] {
				return false
			}
		}
	}
	return true
}

func (g *boolGrid) fill(x, y, w, h int, v bool) {
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			g.occ[yy*g.w+xx] = v
		}
	}
}

func (g *boolGrid) addObstacle(x, y, w, h int) bool {
	if w <= 0 || h <= 0 || !g.canPlace(x, y, w, h) {
		return false
	}
	g.fill(x, y, w, h, true)
	return true
}

func (g *boolGrid) placeBottomLeft(w, h int) (int, int, bool) {
	if w <= 0 || h <= 0 {
		return 0, 0, false
	}
	for yy := 0; yy+h <= g.h; yy++ {
		for xx := 0; xx+w <= g.w; xx++ {
			if g.canPlace(xx, yy, w, h) {
				g.fill(xx, yy, w, h, true)
				return xx, yy, true
			}
		}
	}
	return 0, 0, false
}

// FuzzGridBitset differentially fuzzes the bitset Grid against the bool
// reference: every operation's return values and the full occupancy map must
// match after each step. Widths beyond one word exercise the multi-word
// range and run-scan paths.
func FuzzGridBitset(f *testing.F) {
	f.Add(uint8(10), uint8(6), []byte{0, 2, 3, 4, 4, 1, 1, 3, 3})
	f.Add(uint8(70), uint8(4), []byte{2, 65, 3, 0, 60, 2, 2, 1, 5, 5})
	f.Add(uint8(64), uint8(8), []byte{0, 0, 0, 64, 8, 2, 1, 1})
	f.Fuzz(func(t *testing.T, wByte, hByte uint8, ops []byte) {
		width := int(wByte%130) + 1 // cross the 64- and 128-bit word seams
		height := int(hByte%12) + 1
		g, err := NewGrid(width, height)
		if err != nil {
			t.Fatalf("NewGrid(%d,%d): %v", width, height, err)
		}
		ref := newBoolGrid(width, height)
		check := func(step int, op string) {
			t.Helper()
			if got, want := g.FreeCells(), ref.freeCells(); got != want {
				t.Fatalf("step %d %s: FreeCells %d, reference %d", step, op, got, want)
			}
			for y := -1; y <= height; y++ {
				for x := -1; x <= width; x++ {
					if got, want := g.Occupied(x, y), ref.occupied(x, y); got != want {
						t.Fatalf("step %d %s: Occupied(%d,%d) = %v, reference %v", step, op, x, y, got, want)
					}
				}
			}
		}
		for i := 0; i+4 < len(ops); i += 5 {
			kind := ops[i] % 3
			x := int(ops[i+1]) % (width + 2)
			y := int(ops[i+2]) % (height + 2)
			w := int(ops[i+3]) % (width + 2)
			h := int(ops[i+4]) % (height + 2)
			switch kind {
			case 0:
				err := g.AddObstacle(x, y, w, h)
				refOK := ref.addObstacle(x, y, w, h)
				if (err == nil) != refOK {
					t.Fatalf("step %d: AddObstacle(%d,%d,%d,%d) err=%v, reference ok=%v", i, x, y, w, h, err, refOK)
				}
				check(i, "AddObstacle")
			case 1:
				// RemoveObstacle is only defined for rectangles inside the
				// grid (its callers remove what they previously added).
				if x+w <= width && y+h <= height && w > 0 && h > 0 {
					g.RemoveObstacle(x, y, w, h)
					ref.fill(x, y, w, h, false)
					check(i, "RemoveObstacle")
				}
			case 2:
				gx, gy, gok := g.PlaceBottomLeft(w, h)
				rx, ry, rok := ref.placeBottomLeft(w, h)
				if gx != rx || gy != ry || gok != rok {
					t.Fatalf("step %d: PlaceBottomLeft(%d,%d) = (%d,%d,%v), reference (%d,%d,%v)",
						i, w, h, gx, gy, gok, rx, ry, rok)
				}
				check(i, "PlaceBottomLeft")
			}
		}
	})
}
