package packing

// PackStripBottomLeft is the classic bottom-left strip packing heuristic,
// kept as the ablation baseline against the skyline packer (DESIGN.md §
// ablations). Rectangles are placed, in non-increasing height order, at the
// lowest (then leftmost) feasible position.
//
// It is implemented over the exact grid, which bounds the strip height by
// the area sum (a trivially sufficient height), and therefore runs in
// O(n · W · H) — acceptable for benchmarking, not for on-device use, which
// is exactly the paper's argument for the skyline heuristic.
func PackStripBottomLeft(rects []Rect, stripWidth int) (Layout, error) {
	if err := checkInput(rects, stripWidth); err != nil {
		return Layout{}, err
	}
	layout := Layout{W: stripWidth, Items: make([]Placement, 0, len(rects))}
	if len(rects) == 0 {
		return layout, nil
	}
	// Sufficient height: stacking everything in one column.
	maxH := 0
	for _, r := range rects {
		maxH += r.H
	}
	grid, err := NewGrid(stripWidth, maxH)
	if err != nil {
		return Layout{}, err
	}
	for _, r := range sortForPacking(rects) {
		x, y, ok := grid.PlaceBottomLeft(r.W, r.H)
		if !ok {
			// Cannot happen: the grid is tall enough for a single column.
			return Layout{}, ErrNoFit
		}
		layout.Items = append(layout.Items, Placement{Rect: r, X: x, Y: y})
		if top := y + r.H; top > layout.H {
			layout.H = top
		}
	}
	return layout, nil
}
