package packing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func rects(dims ...[2]int) []Rect {
	rs := make([]Rect, len(dims))
	for i, d := range dims {
		rs[i] = Rect{ID: i, W: d[0], H: d[1]}
	}
	return rs
}

func TestPackStripEmpty(t *testing.T) {
	layout, err := PackStrip(nil, 10)
	if err != nil {
		t.Fatalf("PackStrip(nil) error: %v", err)
	}
	if layout.H != 0 || len(layout.Items) != 0 {
		t.Fatalf("empty packing should have zero height, got %+v", layout)
	}
}

func TestPackStripSingle(t *testing.T) {
	layout, err := PackStrip(rects([2]int{4, 3}), 10)
	if err != nil {
		t.Fatalf("PackStrip error: %v", err)
	}
	if layout.H != 3 {
		t.Errorf("height = %d, want 3", layout.H)
	}
	p := layout.Items[0]
	if p.X != 0 || p.Y != 0 {
		t.Errorf("placement = (%d,%d), want origin", p.X, p.Y)
	}
}

func TestPackStripExactRow(t *testing.T) {
	// Three 2x2 rects fill a width-6 strip in one row.
	layout, err := PackStrip(rects([2]int{2, 2}, [2]int{2, 2}, [2]int{2, 2}), 6)
	if err != nil {
		t.Fatalf("PackStrip error: %v", err)
	}
	if layout.H != 2 {
		t.Errorf("height = %d, want 2 (single row)", layout.H)
	}
	if err := layout.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPackStripStacks(t *testing.T) {
	// Two full-width rects must stack.
	layout, err := PackStrip(rects([2]int{5, 2}, [2]int{5, 3}), 5)
	if err != nil {
		t.Fatalf("PackStrip error: %v", err)
	}
	if layout.H != 5 {
		t.Errorf("height = %d, want 5", layout.H)
	}
	if err := layout.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPackStripBestFitPrefersExactWidth(t *testing.T) {
	// After placing the 4-wide rect in a 6-wide strip, a 2-wide gap remains;
	// best-fit should choose the exact-width 2x1 over raising the segment.
	layout, err := PackStrip(rects([2]int{4, 2}, [2]int{2, 1}), 6)
	if err != nil {
		t.Fatalf("PackStrip error: %v", err)
	}
	if layout.H != 2 {
		t.Errorf("height = %d, want 2 (gap filled)", layout.H)
	}
}

func TestPackStripErrors(t *testing.T) {
	if _, err := PackStrip(rects([2]int{7, 1}), 5); !errors.Is(err, ErrTooWide) {
		t.Errorf("want ErrTooWide, got %v", err)
	}
	if _, err := PackStrip(rects([2]int{0, 1}), 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput, got %v", err)
	}
	if _, err := PackStrip(nil, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput for zero width, got %v", err)
	}
}

func TestPackBin(t *testing.T) {
	rs := rects([2]int{2, 2}, [2]int{2, 2})
	if _, err := PackBin(rs, 4, 2); err != nil {
		t.Errorf("feasible bin rejected: %v", err)
	}
	if _, err := PackBin(rs, 2, 3); !errors.Is(err, ErrNoFit) {
		t.Errorf("infeasible bin accepted (err=%v)", err)
	}
	if Fits(rs, 2, 3) {
		t.Error("Fits reported true for infeasible bin")
	}
	if !Fits(rs, 2, 4) {
		t.Error("Fits reported false for stackable bin")
	}
	if _, err := PackBin(rs, 4, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput for zero height, got %v", err)
	}
}

func TestMinStripHeight(t *testing.T) {
	h, err := MinStripHeight(rects([2]int{3, 2}, [2]int{3, 2}), 3)
	if err != nil {
		t.Fatalf("MinStripHeight error: %v", err)
	}
	if h != 4 {
		t.Errorf("height = %d, want 4", h)
	}
}

func TestPackStripDeterministic(t *testing.T) {
	rs := rects([2]int{3, 2}, [2]int{2, 5}, [2]int{4, 1}, [2]int{1, 1}, [2]int{2, 2})
	a, err := PackStrip(rs, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PackStrip(rs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.H != b.H || len(a.Items) != len(b.Items) {
		t.Fatalf("non-deterministic packing: %v vs %v", a, b)
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("non-deterministic placement %d: %v vs %v", i, a.Items[i], b.Items[i])
		}
	}
}

// randomRects draws n rectangles bounded by the strip width for property
// tests.
func randomRects(rng *rand.Rand, n, maxW, maxH int) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		rs[i] = Rect{ID: i, W: 1 + rng.Intn(maxW), H: 1 + rng.Intn(maxH)}
	}
	return rs
}

func TestPackStripPropertyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 2 + r.Intn(30)
		rs := randomRects(r, 1+r.Intn(40), width, 12)
		layout, err := PackStrip(rs, width)
		if err != nil {
			return false
		}
		if len(layout.Items) != len(rs) {
			return false
		}
		return layout.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPackStripPropertyAreaLowerBound(t *testing.T) {
	// Height can never beat the area lower bound ceil(sum(area)/width), nor
	// the tallest rectangle.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 2 + r.Intn(20)
		rs := randomRects(r, 1+r.Intn(30), width, 10)
		layout, err := PackStrip(rs, width)
		if err != nil {
			return false
		}
		area := totalArea(rs)
		lb := (area + width - 1) / width
		tallest := 0
		for _, rc := range rs {
			if rc.H > tallest {
				tallest = rc.H
			}
		}
		if lb < tallest {
			lb = tallest
		}
		return layout.H >= lb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackStripPropertyNotWorseThanStacking(t *testing.T) {
	// The heuristic must never exceed the trivial one-column stacking bound.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 2 + r.Intn(20)
		rs := randomRects(r, 1+r.Intn(25), width, 8)
		layout, err := PackStrip(rs, width)
		if err != nil {
			return false
		}
		stack := 0
		for _, rc := range rs {
			stack += rc.H
		}
		return layout.H <= stack
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayoutFind(t *testing.T) {
	layout, err := PackStrip(rects([2]int{2, 2}, [2]int{3, 1}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := layout.Find(1); !ok {
		t.Error("Find(1) failed")
	}
	if _, ok := layout.Find(99); ok {
		t.Error("Find(99) should fail")
	}
}

func TestLayoutValidateCatchesOverlap(t *testing.T) {
	bad := Layout{W: 4, H: 4, Items: []Placement{
		{Rect: Rect{ID: 0, W: 2, H: 2}, X: 0, Y: 0},
		{Rect: Rect{ID: 1, W: 2, H: 2}, X: 1, Y: 1},
	}}
	if bad.Validate() == nil {
		t.Error("Validate accepted overlapping layout")
	}
	outside := Layout{W: 4, H: 4, Items: []Placement{
		{Rect: Rect{ID: 0, W: 2, H: 2}, X: 3, Y: 0},
	}}
	if outside.Validate() == nil {
		t.Error("Validate accepted out-of-bounds layout")
	}
}

func TestSkylineMergeAndRaise(t *testing.T) {
	sky := newSkyline(10)
	sky.place(0, 4, 2) // segs: [0..4)@2, [4..10)@0
	if len(sky.segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(sky.segs))
	}
	sky.place(1, 6, 2) // both at height 2 -> merged
	if len(sky.segs) != 1 || sky.segs[0].y != 2 {
		t.Fatalf("expected merged skyline at height 2, got %+v", sky.segs)
	}
	sky.place(0, 3, 1)
	i := sky.lowest()
	sky.raise(i)
	if sky.height() != 3 {
		t.Errorf("height after raise = %d, want 3", sky.height())
	}
}

func TestSortSegmentsHelper(t *testing.T) {
	segs := []segment{{x: 5, w: 1, y: 0}, {x: 0, w: 2, y: 1}}
	sortSegments(segs)
	if segs[0].x != 0 {
		t.Errorf("sortSegments failed: %+v", segs)
	}
}
