package coap

import (
	"testing"
)

// FuzzConExchange drives the confirmable-exchange state machines through a
// fuzzed loss/duplication/reorder trace and asserts the two properties the
// reliable transports build on:
//
//   - a receiver never applies one confirmable message twice within the
//     exchange lifetime, whatever copies the channel delivers;
//   - a sender's exchange never leaks a pending retransmission: it
//     terminates (resolved or given up) within MAX_RETRANSMIT+1
//     transmissions, with strictly advancing timer expiries, and stays
//     terminated.
//
// Each trace byte scripts one transmission attempt: bit 0 drops the data
// copy, bit 1 duplicates it, bit 2 drops the ACK of the (first) copy,
// bit 3 delays the duplicate so it arrives after a later retransmission
// (reordering), bits 4-7 jitter the initial timeout of the exchange.
func FuzzConExchange(f *testing.F) {
	f.Add([]byte{0x00})                               // clean delivery
	f.Add([]byte{0x01, 0x01, 0x00})                   // two drops then delivery
	f.Add([]byte{0x02, 0x00})                         // duplicate then clean
	f.Add([]byte{0x05, 0x05, 0x05, 0x05})             // ACK losses force retransmission
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01}) // total loss: give up
	f.Add([]byte{0x0a, 0x04, 0xf1, 0x00})             // reorder + jitter mix
	f.Fuzz(func(t *testing.T, trace []byte) {
		if len(trace) == 0 {
			return
		}
		params := DefaultReliability(2)
		dedup := NewDedupCache(params.ExchangeLifetime())
		now := 0.0

		// Three sequential messages share the channel trace round-robin, so
		// late duplicates of an earlier Message-ID land while a later
		// exchange runs.
		type lateCopy struct {
			mid uint16
			at  float64
		}
		var pending []lateCopy
		step := 0
		nextOp := func() byte {
			op := trace[step%len(trace)]
			step++
			return op
		}

		for _, mid := range []uint16{100, 101, 102} {
			op := nextOp()
			jitter := float64(op>>4) / 16
			ex := params.NewExchange(mid, now, jitter)
			applied := 0
			prevNext := now
			for {
				if ex.NextAt <= prevNext && ex.Attempts > 1 {
					t.Fatalf("mid %d: timer expiry did not advance: %v <= %v", mid, ex.NextAt, prevNext)
				}
				prevNext = ex.NextAt

				// Deliver any reordered duplicates that are now due.
				for i := 0; i < len(pending); {
					if pending[i].at <= now {
						if !dedup.Observe(uint64(1), pending[i].mid, now) {
							t.Fatalf("late duplicate of mid %d applied again", pending[i].mid)
						}
						pending = append(pending[:i], pending[i+1:]...)
						continue
					}
					i++
				}

				dropData := op&0x01 != 0
				dupData := op&0x02 != 0
				dropAck := op&0x04 != 0
				delayDup := op&0x08 != 0

				acked := false
				if !dropData {
					if !dedup.Observe(uint64(1), mid, now) {
						applied++
					}
					if applied > 1 {
						t.Fatalf("mid %d applied %d times", mid, applied)
					}
					if !dropAck {
						acked = true
					}
				}
				if dupData && !dropData {
					if delayDup {
						// Arrives two timeouts later, possibly mid-next-exchange.
						pending = append(pending, lateCopy{mid: mid, at: now + 2*params.AckTimeout})
					} else if !dedup.Observe(uint64(1), mid, now) {
						t.Fatalf("immediate duplicate of mid %d applied", mid)
					}
				}

				if acked {
					if !ex.Ack(mid) {
						t.Fatalf("mid %d: live exchange refused its ACK", mid)
					}
					break
				}
				now = ex.NextAt
				if !ex.Retransmit(now) {
					if !ex.GaveUp() {
						t.Fatalf("mid %d: exchange stopped without giving up or resolving", mid)
					}
					break
				}
				if ex.Attempts > params.MaxRetransmit+1 {
					t.Fatalf("mid %d: %d transmissions exceed MAX_RETRANSMIT+1", mid, ex.Attempts)
				}
				op = nextOp()
			}
			if !ex.Done() {
				t.Fatalf("mid %d: exchange left pending", mid)
			}
			// A terminated exchange must stay inert.
			if ex.Retransmit(now + 1000) {
				t.Fatalf("mid %d: terminated exchange retransmitted", mid)
			}
			if ex.Resolved() && ex.GaveUp() {
				t.Fatalf("mid %d: both resolved and gave up", mid)
			}
			now += 1
		}
	})
}
