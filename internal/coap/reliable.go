// Confirmable-message reliability (RFC 7252 §4.2–§4.5), carrier-agnostic.
// This file holds the pure state machines — the sender's retransmission
// exchange and the receiver's Message-ID dedup cache — parameterised over
// an abstract time axis (the transports measure it in slots for the
// virtual-time bus and in seconds for the live one). The transports own
// scheduling and I/O; everything that must be correct under loss,
// duplication and reordering lives here, where it can be unit-tested and
// fuzzed without a clock.
package coap

// Reliability transmission parameters (RFC 7252 §4.8), in abstract time
// units. The defaults there are ACK_TIMEOUT = 2 s, ACK_RANDOM_FACTOR = 1.5,
// MAX_RETRANSMIT = 4; the virtual-time transport scales them to slots.
type ReliabilityParams struct {
	// AckTimeout is the base retransmission timeout of the first wait.
	AckTimeout float64
	// RandomFactor widens the initial timeout to a uniform draw from
	// [AckTimeout, AckTimeout*RandomFactor] (§4.2), decorrelating the
	// retransmissions of concurrent exchanges.
	RandomFactor float64
	// MaxRetransmit bounds the number of retransmissions (not counting the
	// initial transmission) before the sender gives up.
	MaxRetransmit int
}

// DefaultReliability returns the RFC 7252 defaults with AckTimeout
// expressed in the given unit (e.g. slots per slotframe for the bus).
func DefaultReliability(ackTimeout float64) ReliabilityParams {
	return ReliabilityParams{AckTimeout: ackTimeout, RandomFactor: 1.5, MaxRetransmit: 4}
}

// ExchangeLifetime is the window a receiver must remember a Message-ID to
// recognise retransmissions and duplicates of it (§4.8.2's EXCHANGE_LIFETIME,
// simplified): the worst-case span of one exchange — every retransmission
// doubling the widened initial timeout — plus one more timeout of slack for
// copies still in flight.
func (p ReliabilityParams) ExchangeLifetime() float64 {
	total := 0.0
	timeout := p.AckTimeout * p.RandomFactor
	for i := 0; i <= p.MaxRetransmit; i++ {
		total += timeout
		timeout *= 2
	}
	return total + p.AckTimeout
}

// Exchange is the sender side of one confirmable exchange: a CON message
// awaiting its ACK, retransmitted with binary exponential backoff. The
// caller transmits the message, schedules a timer for NextAt, and on expiry
// calls Retransmit; Ack resolves the exchange when the matching
// acknowledgement arrives.
type Exchange struct {
	// MessageID is the CON message's ID; the ACK must echo it (§4.4).
	MessageID uint16
	// Attempts counts transmissions so far (the initial send included).
	Attempts int
	// NextAt is the absolute time the current retransmission timer expires.
	NextAt float64

	timeout  float64 // current backoff interval
	maxRetx  int
	resolved bool
	gaveUp   bool
}

// NewExchange starts an exchange at time now. jitter in [0,1) selects the
// initial timeout within [AckTimeout, AckTimeout*RandomFactor]; the caller
// draws it from its own seeded stream so replay stays exact.
func (p ReliabilityParams) NewExchange(messageID uint16, now, jitter float64) *Exchange {
	timeout := p.AckTimeout
	if p.RandomFactor > 1 {
		timeout += p.AckTimeout * (p.RandomFactor - 1) * jitter
	}
	return &Exchange{
		MessageID: messageID,
		Attempts:  1,
		NextAt:    now + timeout,
		timeout:   timeout,
		maxRetx:   p.MaxRetransmit,
	}
}

// Ack resolves the exchange if the acknowledged Message-ID matches.
// Returns true when this ACK settled the exchange; duplicate or stale ACKs
// return false and change nothing.
func (e *Exchange) Ack(messageID uint16) bool {
	if e.resolved || e.gaveUp || messageID != e.MessageID {
		return false
	}
	e.resolved = true
	return true
}

// Retransmit advances the state machine at a timer expiry. It returns true
// when the message must be transmitted again (the timeout has doubled and
// NextAt holds the new expiry), false when the exchange is over — already
// resolved, or retransmissions exhausted (GaveUp then reports true).
func (e *Exchange) Retransmit(now float64) bool {
	if e.resolved || e.gaveUp {
		return false
	}
	if e.Attempts > e.maxRetx {
		e.gaveUp = true
		return false
	}
	e.Attempts++
	e.timeout *= 2
	e.NextAt = now + e.timeout
	return true
}

// Resolved reports whether the ACK arrived.
func (e *Exchange) Resolved() bool { return e.resolved }

// GaveUp reports whether the sender exhausted MAX_RETRANSMIT without an ACK.
func (e *Exchange) GaveUp() bool { return e.gaveUp }

// Done reports whether the exchange holds no pending retransmission.
func (e *Exchange) Done() bool { return e.resolved || e.gaveUp }

// DedupCache is the receiver side: it remembers (peer, Message-ID) pairs
// for ExchangeLifetime so retransmissions and duplicated deliveries of a
// confirmable message are acknowledged but not re-applied (§4.5's
// deduplication requirement). Peers are opaque to this package; the
// transports key by node ID.
type DedupCache struct {
	lifetime float64
	seen     map[dedupKey]float64 // first-seen time
}

type dedupKey struct {
	peer uint64
	mid  uint16
}

// NewDedupCache builds a cache whose entries expire after lifetime.
func NewDedupCache(lifetime float64) *DedupCache {
	return &DedupCache{lifetime: lifetime, seen: make(map[dedupKey]float64)}
}

// Observe records a confirmable message's (peer, Message-ID) at time now
// and reports whether it is a duplicate — already observed within the
// lifetime window. Expired entries are pruned as a side effect, so the
// cache is bounded by the number of exchanges alive in one window.
func (c *DedupCache) Observe(peer uint64, mid uint16, now float64) bool {
	for k, at := range c.seen {
		if now-at > c.lifetime {
			delete(c.seen, k)
		}
	}
	k := dedupKey{peer: peer, mid: mid}
	if at, ok := c.seen[k]; ok && now-at <= c.lifetime {
		return true
	}
	c.seen[k] = now
	return false
}

// Len returns the number of live entries (for tests and accounting).
func (c *DedupCache) Len() int { return len(c.seen) }

// EmptyAck builds the empty acknowledgement for a confirmable message
// (§4.2): type ACK, code 0.00, echoing the Message-ID, no token or payload.
func EmptyAck(messageID uint16) Message {
	return Message{Type: Acknowledgement, Code: CodeEmpty, MessageID: messageID}
}
