package coap

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder. Decode must never
// panic, and any message it accepts must re-encode to a canonical form
// that decodes to the same bytes again (encode∘decode is a fixpoint on
// everything Decode accepts).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{},                       // empty
		{0x40, 0x00, 0x00, 0x00}, // minimal CON empty message
		{0x50, 0x02, 0x12, 0x34}, // NON POST
		{0xff, 0xff, 0xff, 0xff}, // bad version
		{0x48, 0x01, 0x00, 0x01, 1, 2, 3, 4, 5, 6, 7, 8}, // 8-byte token
		{0x40, 0x45, 0x00, 0x02, 0xff, 0xde, 0xad},       // payload marker
	}
	m := NewRequest(NonConfirmable, POST, 7, "intf")
	m.Payload = []byte{9, 9, 9}
	if wire, err := m.Encode(); err == nil {
		seeds = append(seeds, wire)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		wire1, err := msg.Encode()
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v (%+v)", err, msg)
		}
		msg2, err := Decode(wire1)
		if err != nil {
			t.Fatalf("re-encoded message fails to decode: %v (% x)", err, wire1)
		}
		wire2, err := msg2.Encode()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Fatalf("encoding not canonical:\n first: % x\nsecond: % x", wire1, wire2)
		}
	})
}

// FuzzRoundTrip builds structurally valid messages from fuzzed fields and
// asserts Encode→Decode preserves every field HARP relies on.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0x02), uint16(1), []byte{0xab}, "intf", []byte("payload"))
	f.Add(uint8(1), uint8(0x45), uint16(65535), []byte{}, "part", []byte{})
	f.Add(uint8(2), uint8(0x04), uint16(42), []byte{1, 2, 3, 4, 5, 6, 7, 8}, "sched", []byte{0xff})
	f.Fuzz(func(t *testing.T, typ, code uint8, mid uint16, token []byte, path string, payload []byte) {
		if len(token) > 8 || len(path) == 0 || len(path) > 255 {
			return // outside the wire format's domain
		}
		msg := NewRequest(Type(typ%4), Code(code), mid, path)
		msg.Token = token
		msg.Payload = payload
		wire, err := msg.Encode()
		if err != nil {
			// Encode may reject option values it cannot represent; that is
			// a correct refusal, not a bug.
			return
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v (% x)", err, wire)
		}
		if got.Type != msg.Type || got.Code != msg.Code || got.MessageID != msg.MessageID {
			t.Fatalf("header mismatch: sent %+v got %+v", msg, got)
		}
		if !bytes.Equal(got.Token, msg.Token) {
			t.Fatalf("token mismatch: sent % x got % x", msg.Token, got.Token)
		}
		if !bytes.Equal(got.Payload, msg.Payload) {
			t.Fatalf("payload mismatch: sent % x got % x", msg.Payload, got.Payload)
		}
		if got.Path() != msg.Path() {
			t.Fatalf("path mismatch: sent %q got %q", msg.Path(), got.Path())
		}
	})
}
