package coap

import (
	"math"
	"testing"
)

func TestExchangeBackoffDoubles(t *testing.T) {
	p := DefaultReliability(2)
	e := p.NewExchange(7, 10, 0) // jitter 0: initial timeout == AckTimeout
	if e.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", e.Attempts)
	}
	if e.NextAt != 12 {
		t.Fatalf("NextAt = %v, want 12", e.NextAt)
	}
	// Each expiry doubles the timeout: 2, 4, 8, 16, 32.
	wantTimeouts := []float64{4, 8, 16, 32}
	now := e.NextAt
	for i, w := range wantTimeouts {
		if !e.Retransmit(now) {
			t.Fatalf("retransmission %d refused", i+1)
		}
		if got := e.NextAt - now; math.Abs(got-w) > 1e-9 {
			t.Fatalf("retransmission %d timeout = %v, want %v", i+1, got, w)
		}
		now = e.NextAt
	}
	// Initial + MAX_RETRANSMIT transmissions exhausted: next expiry gives up.
	if e.Retransmit(now) {
		t.Fatal("exchange retransmitted beyond MAX_RETRANSMIT")
	}
	if !e.GaveUp() || e.Resolved() || !e.Done() {
		t.Fatalf("state after exhaustion: gaveUp=%t resolved=%t", e.GaveUp(), e.Resolved())
	}
	if e.Attempts != 5 {
		t.Errorf("Attempts = %d, want 5 (initial + 4 retransmissions)", e.Attempts)
	}
}

func TestExchangeJitterWidensInitialTimeout(t *testing.T) {
	p := DefaultReliability(2)
	lo := p.NewExchange(1, 0, 0)
	hi := p.NewExchange(1, 0, 0.999999)
	if lo.NextAt != 2 {
		t.Errorf("jitter-0 timeout = %v, want AckTimeout", lo.NextAt)
	}
	if hi.NextAt <= 2 || hi.NextAt >= 3.0001 {
		t.Errorf("jitter-max timeout = %v, want just under AckTimeout*RandomFactor (3)", hi.NextAt)
	}
}

func TestExchangeAck(t *testing.T) {
	p := DefaultReliability(2)
	e := p.NewExchange(42, 0, 0.5)
	if e.Ack(41) {
		t.Error("ACK with wrong Message-ID resolved the exchange")
	}
	if !e.Ack(42) {
		t.Error("matching ACK did not resolve")
	}
	if e.Ack(42) {
		t.Error("duplicate ACK resolved twice")
	}
	if e.Retransmit(100) {
		t.Error("resolved exchange retransmitted")
	}
	if !e.Resolved() || e.GaveUp() {
		t.Errorf("state: resolved=%t gaveUp=%t", e.Resolved(), e.GaveUp())
	}
}

func TestDedupCacheSuppressesWithinLifetime(t *testing.T) {
	c := NewDedupCache(10)
	if c.Observe(1, 7, 0) {
		t.Fatal("first observation reported duplicate")
	}
	if !c.Observe(1, 7, 5) {
		t.Fatal("retransmission within lifetime not recognised")
	}
	if c.Observe(2, 7, 5) {
		t.Fatal("same Message-ID from a different peer treated as duplicate")
	}
	if c.Observe(1, 8, 5) {
		t.Fatal("different Message-ID treated as duplicate")
	}
	// Past the lifetime the ID may be reused (the 16-bit space wraps).
	if c.Observe(1, 7, 20) {
		t.Fatal("expired entry still suppressing")
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after live observations")
	}
}

func TestDedupCachePrunes(t *testing.T) {
	c := NewDedupCache(1)
	for mid := uint16(0); mid < 100; mid++ {
		c.Observe(1, mid, float64(mid)*10)
	}
	// Every earlier entry expired long before the last observation.
	if c.Len() != 1 {
		t.Errorf("Len = %d after pruning, want 1", c.Len())
	}
}

func TestEmptyAckRoundTrip(t *testing.T) {
	ack := EmptyAck(999)
	wire, err := ack.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Acknowledgement || got.Code != CodeEmpty || got.MessageID != 999 {
		t.Errorf("ACK corrupted: %+v", got)
	}
}

func TestExchangeLifetimeCoversFullBackoff(t *testing.T) {
	p := DefaultReliability(2)
	// Worst-case exchange span: widened initial timeout 3, doubled 4 times:
	// 3+6+12+24+48 = 93, plus one AckTimeout slack.
	if got := p.ExchangeLifetime(); got != 95 {
		t.Errorf("ExchangeLifetime = %v, want 95", got)
	}
}
