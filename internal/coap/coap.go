// Package coap implements the subset of the Constrained Application
// Protocol (RFC 7252) that HARP uses as its carrier (§VI-A, Table I):
// confirmable/non-confirmable messages, the GET/POST/PUT method codes and
// basic response codes, Uri-Path options, tokens and payloads, with the
// standard binary wire encoding. The agent layer routes HARP's four
// handlers (POST/PUT on /intf and /part) over these messages.
package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Type is the CoAP message type (RFC 7252 §3).
type Type uint8

// Message types.
const (
	Confirmable     Type = 0
	NonConfirmable  Type = 1
	Acknowledgement Type = 2
	Reset           Type = 3
)

// String names the CoAP message type (CON/NON/ACK/RST).
func (t Type) String() string {
	switch t {
	case Confirmable:
		return "CON"
	case NonConfirmable:
		return "NON"
	case Acknowledgement:
		return "ACK"
	case Reset:
		return "RST"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Code is the CoAP code registry value: class.detail packed as
// 3 bits class, 5 bits detail (RFC 7252 §12.1).
type Code uint8

// Method and response codes used by HARP.
const (
	CodeEmpty   Code = 0
	GET         Code = 0x01
	POST        Code = 0x02
	PUT         Code = 0x03
	DELETE      Code = 0x04
	Created     Code = 0x41 // 2.01
	Deleted     Code = 0x42 // 2.02
	Changed     Code = 0x44 // 2.04
	Content     Code = 0x45 // 2.05
	BadRequest  Code = 0x80 // 4.00
	NotFound    Code = 0x84 // 4.04
	ServerError Code = 0xA0 // 5.00
)

// Class returns the code class (0 = request, 2/4/5 = response classes).
func (c Code) Class() uint8 { return uint8(c) >> 5 }

// Detail returns the code detail.
func (c Code) Detail() uint8 { return uint8(c) & 0x1f }

// String renders the code in the CoAP class.detail notation (e.g. 2.05).
func (c Code) String() string {
	switch c {
	case GET:
		return "GET"
	case POST:
		return "POST"
	case PUT:
		return "PUT"
	case DELETE:
		return "DELETE"
	case CodeEmpty:
		return "EMPTY"
	default:
		return fmt.Sprintf("%d.%02d", c.Class(), c.Detail())
	}
}

// IsRequest reports whether the code is a method code.
func (c Code) IsRequest() bool { return c.Class() == 0 && c != CodeEmpty }

// Option numbers used by this implementation.
const (
	OptionUriPath       uint16 = 11
	OptionContentFormat uint16 = 12
)

// Option is one CoAP option instance.
type Option struct {
	Number uint16
	Value  []byte
}

// Message is a CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// Version is the protocol version encoded in every message.
const Version = 1

// Errors returned by Decode.
var (
	ErrTruncated  = errors.New("coap: truncated message")
	ErrBadVersion = errors.New("coap: unsupported version")
	ErrBadToken   = errors.New("coap: token length > 8")
	ErrBadOption  = errors.New("coap: malformed option")
)

// NewRequest builds a request with the given method and Uri-Path segments.
func NewRequest(t Type, method Code, messageID uint16, path ...string) Message {
	m := Message{Type: t, Code: method, MessageID: messageID}
	for _, seg := range path {
		m.Options = append(m.Options, Option{Number: OptionUriPath, Value: []byte(seg)})
	}
	return m
}

// PathSegment returns the message's sole Uri-Path segment without
// copying, and whether the message has exactly one segment (every
// Table I message does). Callers must not retain or mutate the slice;
// it aliases the option value. This is the transport's allocation-free
// counting fast path — Path() allocates on every call.
func (m Message) PathSegment() ([]byte, bool) {
	var seg []byte
	n := 0
	for _, o := range m.Options {
		if o.Number == OptionUriPath {
			n++
			seg = o.Value
		}
	}
	return seg, n == 1
}

// Path returns the Uri-Path of the message joined with '/'.
func (m Message) Path() string {
	var segs []string
	for _, o := range m.Options {
		if o.Number == OptionUriPath {
			segs = append(segs, string(o.Value))
		}
	}
	return strings.Join(segs, "/")
}

// Response builds a reply to the message carrying the same token (piggybacked
// ACK for confirmable requests, NON otherwise).
func (m Message) Response(code Code, payload []byte) Message {
	t := NonConfirmable
	if m.Type == Confirmable {
		t = Acknowledgement
	}
	return Message{
		Type:      t,
		Code:      code,
		MessageID: m.MessageID,
		Token:     append([]byte(nil), m.Token...),
		Payload:   payload,
	}
}

// Encode serialises the message to the RFC 7252 wire format into a fresh
// buffer. Hot paths that reuse a scratch buffer call AppendTo directly.
func (m Message) Encode() ([]byte, error) {
	//harplint:allow hotpath callers without a scratch buffer accept one allocation
	buf := make([]byte, 0, 8+len(m.Token)+len(m.Payload)+4*len(m.Options))
	return m.AppendTo(buf)
}

// AppendTo serialises the message to the RFC 7252 wire format, appending to
// dst and returning the extended buffer. With a pre-sized dst it performs
// no allocations when the options are already in ascending number order —
// the order every encoder in this module produces.
//
//harplint:hotpath
func (m Message) AppendTo(dst []byte) ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, ErrBadToken
	}
	buf := append(dst, byte(Version<<6)|byte(m.Type)<<4|byte(len(m.Token)))
	buf = append(buf, byte(m.Code))
	buf = binary.BigEndian.AppendUint16(buf, m.MessageID)
	buf = append(buf, m.Token...)

	opts := m.Options
	if !optionsSorted(opts) {
		// Cold path: out-of-order options are copied and insertion-sorted
		// (stable) so the caller's slice is left untouched.
		sorted := make([]Option, len(opts)) //harplint:allow hotpath out-of-order options are a cold path
		copy(sorted, opts)
		sortOptions(sorted)
		opts = sorted
	}
	prev := uint16(0)
	for _, o := range opts {
		delta := o.Number - prev
		prev = o.Number
		var err error
		buf, err = appendOptionHeader(buf, delta, len(o.Value))
		if err != nil {
			return nil, err
		}
		buf = append(buf, o.Value...)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, 0xFF)
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// optionsSorted reports whether the options are already in ascending
// number order.
func optionsSorted(opts []Option) bool {
	for i := 1; i < len(opts); i++ {
		if opts[i].Number < opts[i-1].Number {
			return false
		}
	}
	return true
}

// sortOptions stable-sorts options by number (insertion sort: option lists
// are short, and it avoids sort.SliceStable's closure allocation).
func sortOptions(opts []Option) {
	for i := 1; i < len(opts); i++ {
		for j := i; j > 0 && opts[j].Number < opts[j-1].Number; j-- {
			opts[j], opts[j-1] = opts[j-1], opts[j]
		}
	}
}

// appendOptionHeader writes the option delta/length nibbles with the
// extended encodings of RFC 7252 §3.1.
func appendOptionHeader(buf []byte, delta uint16, length int) ([]byte, error) {
	if length > 0xFFFF {
		return nil, ErrBadOption
	}
	dn := nibbleField(uint32(delta))
	ln := nibbleField(uint32(length))
	buf = append(buf, dn<<4|ln)
	buf = appendNibbleExt(buf, dn, uint32(delta))
	buf = appendNibbleExt(buf, ln, uint32(length))
	return buf, nil
}

// nibbleField returns the 4-bit field for a delta or length.
func nibbleField(v uint32) byte {
	switch {
	case v < 13:
		return byte(v)
	case v < 269:
		return 13
	default:
		return 14
	}
}

// appendNibbleExt appends the extension bytes matching a nibble field.
func appendNibbleExt(buf []byte, n byte, v uint32) []byte {
	switch n {
	case 13:
		return append(buf, byte(v-13))
	case 14:
		return binary.BigEndian.AppendUint16(buf, uint16(v-269))
	}
	return buf
}

// Decode parses a wire-format message.
//
//harplint:hotpath
func Decode(data []byte) (Message, error) {
	if len(data) < 4 {
		return Message{}, ErrTruncated
	}
	if data[0]>>6 != Version {
		return Message{}, ErrBadVersion
	}
	var m Message
	m.Type = Type((data[0] >> 4) & 0x3)
	tkl := int(data[0] & 0x0F)
	if tkl > 8 {
		return Message{}, ErrBadToken
	}
	m.Code = Code(data[1])
	m.MessageID = binary.BigEndian.Uint16(data[2:4])
	rest := data[4:]
	if len(rest) < tkl {
		return Message{}, ErrTruncated
	}
	if tkl > 0 {
		m.Token = append([]byte(nil), rest[:tkl]...) //harplint:allow hotpath the decoded message owns its bytes; callers reuse the input buffer
	}
	rest = rest[tkl:]

	prev := uint16(0)
	for len(rest) > 0 {
		if rest[0] == 0xFF {
			if len(rest) == 1 {
				return Message{}, ErrTruncated // payload marker with no payload
			}
			m.Payload = append([]byte(nil), rest[1:]...) //harplint:allow hotpath the decoded message owns its bytes; callers reuse the input buffer
			return m, nil
		}
		dn := rest[0] >> 4
		ln := rest[0] & 0x0F
		rest = rest[1:]
		delta, r, err := readExtended(dn, rest)
		if err != nil {
			return Message{}, err
		}
		rest = r
		length, r, err := readExtended(ln, rest)
		if err != nil {
			return Message{}, err
		}
		rest = r
		if len(rest) < int(length) {
			return Message{}, ErrTruncated
		}
		prev += uint16(delta)
		//harplint:allow hotpath the decoded message owns its bytes; callers reuse the input buffer
		m.Options = append(m.Options, Option{Number: prev, Value: append([]byte(nil), rest[:length]...)})
		rest = rest[length:]
	}
	return m, nil
}

// readExtended resolves a 4-bit delta/length nibble plus extension bytes.
func readExtended(n byte, rest []byte) (uint32, []byte, error) {
	switch n {
	case 15:
		return 0, nil, ErrBadOption // reserved for payload marker
	case 14:
		if len(rest) < 2 {
			return 0, nil, ErrTruncated
		}
		return uint32(binary.BigEndian.Uint16(rest[:2])) + 269, rest[2:], nil
	case 13:
		if len(rest) < 1 {
			return 0, nil, ErrTruncated
		}
		return uint32(rest[0]) + 13, rest[1:], nil
	default:
		return uint32(n), rest, nil
	}
}
