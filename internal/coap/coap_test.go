package coap

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeClassification(t *testing.T) {
	if !POST.IsRequest() || !PUT.IsRequest() || !GET.IsRequest() {
		t.Error("methods must be requests")
	}
	if Changed.IsRequest() || CodeEmpty.IsRequest() {
		t.Error("responses/empty must not be requests")
	}
	if Changed.Class() != 2 || Changed.Detail() != 4 {
		t.Errorf("Changed = %d.%02d, want 2.04", Changed.Class(), Changed.Detail())
	}
	if BadRequest.Class() != 4 || ServerError.Class() != 5 {
		t.Error("error classes wrong")
	}
	for _, c := range []Code{GET, POST, PUT, DELETE, Changed, CodeEmpty} {
		if c.String() == "" {
			t.Errorf("Code(%d).String empty", c)
		}
	}
	for _, ty := range []Type{Confirmable, NonConfirmable, Acknowledgement, Reset, Type(7)} {
		if ty.String() == "" {
			t.Errorf("Type(%d).String empty", ty)
		}
	}
}

func TestRequestPath(t *testing.T) {
	m := NewRequest(Confirmable, POST, 42, "intf")
	if m.Path() != "intf" {
		t.Errorf("Path = %q, want intf", m.Path())
	}
	multi := NewRequest(NonConfirmable, PUT, 1, "harp", "part")
	if multi.Path() != "harp/part" {
		t.Errorf("Path = %q", multi.Path())
	}
	if (Message{}).Path() != "" {
		t.Error("empty message path should be empty")
	}
}

func TestResponseMirrorsExchange(t *testing.T) {
	req := NewRequest(Confirmable, POST, 7, "intf")
	req.Token = []byte{0xAB, 0xCD}
	resp := req.Response(Changed, []byte("ok"))
	if resp.Type != Acknowledgement {
		t.Errorf("CON response type = %v, want ACK", resp.Type)
	}
	if resp.MessageID != 7 || !bytes.Equal(resp.Token, req.Token) {
		t.Error("response must echo message ID and token")
	}
	non := NewRequest(NonConfirmable, PUT, 8, "part").Response(Changed, nil)
	if non.Type != NonConfirmable {
		t.Errorf("NON response type = %v, want NON", non.Type)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewRequest(Confirmable, POST, 0x1234, "intf")
	m.Token = []byte{1, 2, 3}
	m.Options = append(m.Options, Option{Number: OptionContentFormat, Value: []byte{42}})
	m.Payload = []byte("hello harp")
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != m.Type || back.Code != m.Code || back.MessageID != m.MessageID {
		t.Errorf("header mismatch: %+v vs %+v", back, m)
	}
	if !bytes.Equal(back.Token, m.Token) || !bytes.Equal(back.Payload, m.Payload) {
		t.Error("token/payload mismatch")
	}
	if back.Path() != "intf" {
		t.Errorf("path = %q", back.Path())
	}
	if len(back.Options) != 2 {
		t.Fatalf("options = %d, want 2", len(back.Options))
	}
}

func TestEncodeHeaderLayout(t *testing.T) {
	m := Message{Type: Confirmable, Code: GET, MessageID: 0xBEEF}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if wire[0] != 0x40 { // version 1, CON, TKL 0
		t.Errorf("first byte = %#x, want 0x40", wire[0])
	}
	if wire[1] != byte(GET) || wire[2] != 0xBE || wire[3] != 0xEF {
		t.Errorf("header = % x", wire[:4])
	}
	if len(wire) != 4 {
		t.Errorf("empty GET length = %d, want 4", len(wire))
	}
}

func TestEncodeLongOptionsExtendedNibbles(t *testing.T) {
	// Length 13..268 uses the 1-byte extension; > 268 the 2-byte one.
	long := bytes.Repeat([]byte{'x'}, 300)
	m := Message{Type: NonConfirmable, Code: PUT, MessageID: 9,
		Options: []Option{{Number: OptionUriPath, Value: long}}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Options[0].Value, long) {
		t.Error("long option corrupted")
	}
	// Large option number uses the delta extension.
	m2 := Message{Type: NonConfirmable, Code: PUT, MessageID: 9,
		Options: []Option{{Number: 2000, Value: []byte("v")}}}
	wire2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Decode(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Options[0].Number != 2000 {
		t.Errorf("option number = %d, want 2000", back2.Options[0].Number)
	}
}

func TestEncodeErrors(t *testing.T) {
	m := Message{Token: bytes.Repeat([]byte{1}, 9)}
	if _, err := m.Encode(); !errors.Is(err, ErrBadToken) {
		t.Errorf("want ErrBadToken, got %v", err)
	}
	big := Message{Options: []Option{{Number: 1, Value: make([]byte, 0x10000)}}}
	if _, err := big.Encode(); !errors.Is(err, ErrBadOption) {
		t.Errorf("want ErrBadOption, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		err  error
	}{
		{"short", []byte{0x40, 0x01}, ErrTruncated},
		{"version", []byte{0x80, 0x01, 0, 0}, ErrBadVersion},
		{"token-length", []byte{0x49, 0x01, 0, 0}, ErrBadToken},
		{"token-truncated", []byte{0x42, 0x01, 0, 0, 0xAA}, ErrTruncated},
		{"marker-no-payload", []byte{0x40, 0x01, 0, 0, 0xFF}, ErrTruncated},
		{"option-truncated", []byte{0x40, 0x01, 0, 0, 0x11}, ErrTruncated},
		{"option-reserved", []byte{0x40, 0x01, 0, 0, 0xF1, 0x00}, ErrBadOption},
		{"delta-ext-truncated", []byte{0x40, 0x01, 0, 0, 0xD1}, ErrTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(c.data); !errors.Is(err, c.err) {
				t.Errorf("Decode(% x) err = %v, want %v", c.data, err, c.err)
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Message{
			Type:      Type(rng.Intn(4)),
			Code:      Code(rng.Intn(200)),
			MessageID: uint16(rng.Intn(1 << 16)),
		}
		if n := rng.Intn(9); n > 0 {
			m.Token = make([]byte, n)
			rng.Read(m.Token)
		}
		for i := 0; i < rng.Intn(4); i++ {
			v := make([]byte, rng.Intn(20))
			rng.Read(v)
			m.Options = append(m.Options, Option{Number: uint16(1 + rng.Intn(500)), Value: v})
		}
		if rng.Intn(2) == 1 {
			m.Payload = make([]byte, 1+rng.Intn(64))
			rng.Read(m.Payload)
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(wire)
		if err != nil {
			return false
		}
		if back.Type != m.Type || back.Code != m.Code || back.MessageID != m.MessageID {
			return false
		}
		if !bytes.Equal(back.Token, m.Token) || !bytes.Equal(back.Payload, m.Payload) {
			return false
		}
		if len(back.Options) != len(m.Options) {
			return false
		}
		// Options are re-ordered by number on encode; compare as multisets
		// keyed by number.
		want := map[uint16][]string{}
		for _, o := range m.Options {
			want[o.Number] = append(want[o.Number], string(o.Value))
		}
		got := map[uint16][]string{}
		for _, o := range back.Options {
			got[o.Number] = append(got[o.Number], string(o.Value))
		}
		if len(want) != len(got) {
			return false
		}
		for num, vs := range want {
			if len(got[num]) != len(vs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAppendToAllocFree pins the //harplint:hotpath contract on the
// encoder: serialising into a reused scratch buffer with in-order options
// allocates nothing.
func TestAppendToAllocFree(t *testing.T) {
	m := Message{
		Type:      Confirmable,
		Code:      POST,
		MessageID: 0x1234,
		Token:     []byte{0xAA, 0xBB},
		Options: []Option{
			{Number: OptionUriPath, Value: []byte("partition")},
			{Number: OptionContentFormat, Value: []byte{42}},
		},
		Payload: []byte(`{"cells":3}`),
	}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		out, err := m.AppendTo(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs != 0 {
		t.Errorf("AppendTo into scratch buffer allocates %.2f times, want 0", allocs)
	}
	// The reused-buffer encoding must match the allocating Encode path.
	want, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("AppendTo = %x, Encode = %x", got, want)
	}
}
