package harp

import (
	"math/rand"
	"testing"
)

func TestBuildFig1Network(t *testing.T) {
	tree := Fig1Topology()
	tasks, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(tree, TestbedSlotframe(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := nw.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(tree); err != nil {
		t.Fatalf("public API produced conflicting schedule: %v", err)
	}
	if sched.TotalCells() == 0 {
		t.Fatal("empty schedule")
	}
}

func TestNetworkSetTaskRate(t *testing.T) {
	tree := Fig1Topology()
	tasks, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(tree, TestbedSlotframe(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := nw.SetTaskRate(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("rate change produced no adjustments")
	}
	if TotalMessages(reports) < 0 {
		t.Fatal("negative message total")
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("invalid after rate change: %v", err)
	}
	// Every link on node 8's path now carries 3 cells for the task plus
	// forwarding demand.
	l := Link{Child: 8, Direction: Uplink}
	if got := len(nw.Plan.CellsOf(l)); got != 3 {
		t.Errorf("link %v cells = %d, want 3", l, got)
	}
	// Decreases release locally and never fail.
	if _, err := nw.SetTaskRate(8, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unknown task surfaces an error.
	if _, err := nw.SetTaskRate(999, 1); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestNetworkRejectsImpossibleRate(t *testing.T) {
	tree := Fig1Topology()
	tasks, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(tree, TestbedSlotframe(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.SetTaskRate(8, 500); err == nil {
		t.Error("impossible rate accepted")
	}
}

func TestGenerateAndSimulateThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree, err := GenerateTopology(GenSpec{Nodes: 20, Layers: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := TestbedSlotframe()
	nw, err := Build(tree, frame, tasks)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := nw.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(SimConfig{Tree: tree, Frame: frame, Tasks: tasks, PDR: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSchedule(sched)
	if err := s.RunSlotframes(5); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, r := range s.Records() {
		if r.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no deliveries through facade pipeline")
	}
	if s.Collisions != 0 {
		t.Fatalf("collisions on HARP schedule: %d", s.Collisions)
	}
}

func TestCannedTopologiesExported(t *testing.T) {
	if Fig1Topology().Len() != 12 || Testbed50Topology().Len() != 50 || Deep81Topology().Len() != 81 {
		t.Error("canned topology sizes wrong")
	}
	if GatewayID != 0 {
		t.Error("gateway id wrong")
	}
	if Uplink == Downlink {
		t.Error("directions collide")
	}
	demand, err := PerLinkDemand(Fig1Topology(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if demand.TotalCells() != 2*11*2 {
		t.Errorf("per-link demand = %d, want 44", demand.TotalCells())
	}
	set := NewTaskSet()
	if set.Len() != 0 {
		t.Error("new task set not empty")
	}
}

func TestNetworkReparentNode(t *testing.T) {
	tree := Fig1Topology()
	tasks, err := UniformEcho(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(tree, TestbedSlotframe(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Node 5 (with children 8, 9) switches from parent 1 to parent 3.
	rep, err := nw.ReparentNode(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMessages() <= 0 {
		t.Error("migration reported no messages")
	}
	if p, _ := tree.Parent(5); p != 3 {
		t.Errorf("parent(5) = %d, want 3", p)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("invalid after reparent: %v", err)
	}
	// Traffic still flows: demand-complete on the new routes.
	demand, err := ComputeDemand(tree, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range demand.Links() {
		if got := len(nw.Plan.CellsOf(l)); got != demand.Cells(l) {
			t.Errorf("link %v: %d cells, want %d", l, got, demand.Cells(l))
		}
	}
	// Invalid moves surface errors (8 is now a descendant of 3).
	if _, err := nw.ReparentNode(3, 8); err == nil {
		t.Error("cycle-creating move accepted")
	}
	if _, err := nw.ReparentNode(GatewayID, 1); err == nil {
		t.Error("gateway move accepted")
	}
}
