package harp

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the corresponding experiment at a bench-friendly repetition count and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipelines and prints the reproduced numbers.
// cmd/harpbench prints the full tables at paper-scale repetition counts.

import (
	"math/rand"
	"testing"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/experiments"
	"github.com/harpnet/harp/internal/packing"
	"github.com/harpnet/harp/internal/parallel"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/schedulers"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
)

// BenchmarkFig7dStaticAllocation regenerates the partitioned slotframe of
// the 50-node testbed (Fig. 7(d)) and reports the static-phase message
// cost.
func BenchmarkFig7dStaticAllocation(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7d()
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Static.Total()
	}
	b.ReportMetric(float64(msgs), "static-msgs")
}

// BenchmarkFig9StaticLatency regenerates the per-node latency profile of
// the static 50-node network (Fig. 9) and reports the worst mean latency
// (paper: bounded by the 1.99 s slotframe).
func BenchmarkFig9StaticLatency(b *testing.B) {
	cfg := experiments.DefaultFig9()
	cfg.Minutes = 2 // bench-scale; cmd/harpbench runs the full 30 minutes
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, n := range res.Nodes {
			if n.MeanSec > worst {
				worst = n.MeanSec
			}
		}
	}
	b.ReportMetric(worst, "worst-mean-latency-s")
}

// BenchmarkFig10DynamicLatency regenerates the rate-step scenario of
// Fig. 10 and reports the latency spike of the escalated adjustment.
func BenchmarkFig10DynamicLatency(b *testing.B) {
	cfg := experiments.DefaultFig10()
	var spike float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		spike = res.MaxLatencySec
	}
	b.ReportMetric(spike, "max-latency-s")
}

// BenchmarkTableIIAdjustmentOverhead regenerates the six adjustment events
// of Table II on the distributed agent fleet and reports the largest
// message count.
func BenchmarkTableIIAdjustmentOverhead(b *testing.B) {
	cfg := experiments.DefaultTableII()
	var maxMsgs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		maxMsgs = 0
		for _, r := range res.Rows {
			if r.Messages > maxMsgs {
				maxMsgs = r.Messages
			}
		}
	}
	b.ReportMetric(float64(maxMsgs), "max-event-msgs")
}

// BenchmarkFig11aCollisionVsRate regenerates the data-rate sweep of
// Fig. 11(a) and reports the baselines' mean collision probability at rate
// 8 alongside HARP's (which must be 0).
func BenchmarkFig11aCollisionVsRate(b *testing.B) {
	cfg := experiments.DefaultFig11a()
	cfg.Topologies = 10 // bench-scale; cmd/harpbench runs the paper's 100
	var randomAt8, harpAt8 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			last := s.Points[len(s.Points)-1].Y
			switch s.Name {
			case "random":
				randomAt8 = last
			case "harp":
				harpAt8 = last
			}
		}
	}
	b.ReportMetric(randomAt8, "random-prob-rate8")
	b.ReportMetric(harpAt8, "harp-prob-rate8")
}

// BenchmarkFig11aSweepWorkers runs the Fig. 11(a) sweep with the parallel
// engine pinned to 1 worker and to GOMAXPROCS, so `go test -bench
// Fig11aSweepWorkers` shows the fan-out speedup directly. The outputs are
// byte-identical either way (see internal/experiments determinism tests).
func BenchmarkFig11aSweepWorkers(b *testing.B) {
	cfg := experiments.DefaultFig11a()
	cfg.Topologies = 10
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "gomaxprocs"
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig11a(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11bCollisionVsChannels regenerates the channel sweep of
// Fig. 11(b) and reports probabilities at 2 channels.
func BenchmarkFig11bCollisionVsChannels(b *testing.B) {
	cfg := experiments.DefaultFig11b()
	cfg.Topologies = 10
	var randomAt2, harpAt2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			first := s.Points[0].Y
			switch s.Name {
			case "random":
				randomAt2 = first
			case "harp":
				harpAt2 = first
			}
		}
	}
	b.ReportMetric(randomAt2, "random-prob-2ch")
	b.ReportMetric(harpAt2, "harp-prob-2ch")
}

// BenchmarkFig12AdjustmentOverhead regenerates the per-layer adjustment
// overhead comparison (Fig. 12) and reports both schedulers' cost at the
// deepest layer.
func BenchmarkFig12AdjustmentOverhead(b *testing.B) {
	cfg := experiments.DefaultFig12()
	cfg.Topologies = 2
	var apas10, harp10 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			last := s.Points[len(s.Points)-1].Y
			switch s.Name {
			case "apas":
				apas10 = last
			case "harp":
				harp10 = last
			}
		}
	}
	b.ReportMetric(apas10, "apas-msgs-layer10")
	b.ReportMetric(harp10, "harp-msgs-layer10")
}

// BenchmarkChurnMigration measures HARP absorbing RPL parent switches
// incrementally (topology dynamics, §V) and reports the mean migration
// message cost against the full static rebuild cost.
func BenchmarkChurnMigration(b *testing.B) {
	cfg := experiments.DefaultChurn()
	cfg.Events = 10
	var mean, static float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Churn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total := 0.0
		for _, m := range res.MigrationMessages {
			total += m
		}
		if len(res.MigrationMessages) > 0 {
			mean = total / float64(len(res.MigrationMessages))
		}
		static = float64(res.StaticMessages)
	}
	b.ReportMetric(mean, "migration-msgs")
	b.ReportMetric(static, "rebuild-msgs")
}

// Ablation benches (design choices called out in DESIGN.md).

// BenchmarkAblationTwoPassComposition quantifies the channel saving of
// Alg. 1's second packing pass.
func BenchmarkAblationTwoPassComposition(b *testing.B) {
	cfg := experiments.AblationConfig{Instances: 100, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTwoPass(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLayeredInterface quantifies the slot saving of the
// layered interface design (Fig. 3).
func BenchmarkAblationLayeredInterface(b *testing.B) {
	cfg := experiments.AblationConfig{Instances: 50, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLayeredInterface(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdjustmentHeuristic compares Alg. 2's neighbour-first
// eviction against a full repack.
func BenchmarkAblationAdjustmentHeuristic(b *testing.B) {
	cfg := experiments.AblationConfig{Instances: 100, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAdjustment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPackers compares the skyline and bottom-left strip
// packers.
func BenchmarkAblationPackers(b *testing.B) {
	cfg := experiments.AblationConfig{Instances: 100, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPackers(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the hot paths.

// BenchmarkSkylinePack measures the strip packer on a typical composition
// instance.
func BenchmarkSkylinePack(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]packing.Rect, 24)
	for i := range rects {
		rects[i] = packing.Rect{ID: i, W: 1 + rng.Intn(8), H: 1 + rng.Intn(12)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packing.PackStrip(rects, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticPlan50 measures a full static partition allocation for the
// 50-node testbed.
func BenchmarkStaticPlan50(b *testing.B) {
	tree := topology.Testbed50()
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		b.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		b.Fatal(err)
	}
	frame := schedule.Testbed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(tree, frame, demand, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicAdjustment measures one Case-2 partition adjustment.
func BenchmarkDynamicAdjustment(b *testing.B) {
	tree := topology.Testbed50()
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		b.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		b.Fatal(err)
	}
	frame := schedule.Slotframe{Slots: 400, Channels: 16, DataSlots: 380, SlotDuration: 10_000_000}
	l := topology.Link{Child: 15, Direction: topology.Uplink}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		plan, err := core.NewPlan(tree, frame, demand, core.Options{RootGap: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := plan.SetLinkDemand(l, plan.Demand(l)+2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerBuild measures schedule construction per scheduler on
// the 50-node network.
func BenchmarkSchedulerBuild(b *testing.B) {
	tree := topology.Testbed50()
	demand, err := traffic.PerLink(tree, 3)
	if err != nil {
		b.Fatal(err)
	}
	frame := schedule.Slotframe{Slots: 199, Channels: 16, DataSlots: 199, SlotDuration: 10_000_000}
	for _, sched := range schedulers.All() {
		b.Run(sched.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := sched.Build(tree, frame, demand, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
