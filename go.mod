module github.com/harpnet/harp

go 1.22
