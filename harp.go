// Package harp is a Go implementation of HARP — the hierarchical resource
// partitioning framework for dynamic industrial wireless networks (Wang,
// Zhang, Shen, Hu, Han; ICDCS 2022) — together with everything needed to
// operate and evaluate it: a tree topology model, periodic-task traffic,
// TDMA slotframes, baseline schedulers (random, MSF, LDSF, ALICE), the
// centralized APaS baseline, a slot-accurate network simulator, an
// RFC 7252 CoAP codec with the HARP message protocol, and distributed
// per-node agents that run the protocol over in-memory transports.
//
// The quickest entry point is Build, which runs HARP's static partition
// allocation for a topology and task set and returns a Network whose
// schedule is guaranteed collision-free; SetTaskRate then exercises the
// dynamic partition adjustment:
//
//	tree := harp.Fig1Topology()
//	tasks, _ := harp.UniformEcho(tree, 1)
//	nw, _ := harp.Build(tree, harp.TestbedSlotframe(), tasks)
//	sched, _ := nw.Schedule()
//	reports, _ := nw.SetTaskRate(8, 3) // triple node 8's sampling rate
//
// The deeper layers are exposed directly: core (partitioning engine),
// schedulers/apas (baselines), sim (simulator), agent/transport/coap/proto
// (the distributed protocol stack), and experiments (regeneration of every
// table and figure in the paper); see DESIGN.md for the map.
package harp

import (
	"fmt"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/sim"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
)

// Re-exported topology types.
type (
	// NodeID identifies a network node; the gateway is GatewayID.
	NodeID = topology.NodeID
	// Tree is the routing tree (gateway-rooted).
	Tree = topology.Tree
	// Link is a directed edge, identified by its child endpoint.
	Link = topology.Link
	// Direction distinguishes uplink from downlink.
	Direction = topology.Direction
	// GenSpec parameterises random topology generation.
	GenSpec = topology.GenSpec
)

// Re-exported traffic types.
type (
	// Task is a periodic end-to-end flow.
	Task = traffic.Task
	// TaskID identifies a task.
	TaskID = traffic.TaskID
	// TaskSet is a collection of tasks.
	TaskSet = traffic.Set
	// Demand is the link-level cell requirement derived from tasks.
	Demand = traffic.Demand
)

// Re-exported schedule types.
type (
	// Slotframe is the TDMA frame configuration.
	Slotframe = schedule.Slotframe
	// Cell is one (slot, channel) resource unit.
	Cell = schedule.Cell
	// Region is a rectangular block of cells (a partition's footprint).
	Region = schedule.Region
	// Schedule is a complete link-to-cells assignment.
	Schedule = schedule.Schedule
)

// Re-exported HARP engine types.
type (
	// Plan is the full partition-hierarchy state with dynamic adjustment.
	Plan = core.Plan
	// PlanOptions configures plan construction.
	PlanOptions = core.Options
	// Adjustment reports the cost of one dynamic traffic change.
	Adjustment = core.Adjustment
	// Component is a resource component [slots, channels] (Definition 1).
	Component = core.Component
	// Interface is a per-layer collection of components (Definition 2).
	Interface = core.Interface
)

// Re-exported simulator types.
type (
	// Simulator is the slot-accurate TDMA network simulator.
	Simulator = sim.Simulator
	// SimConfig parameterises a simulation.
	SimConfig = sim.Config
	// PacketRecord traces one task instance end to end.
	PacketRecord = sim.PacketRecord
)

// Topology constructors and constants.
const (
	// GatewayID is the tree root's identifier.
	GatewayID = topology.GatewayID
	// Uplink is the child-to-parent direction.
	Uplink = topology.Uplink
	// Downlink is the parent-to-child direction.
	Downlink = topology.Downlink
)

// NewTree returns a tree holding only the gateway.
func NewTree() *Tree { return topology.New() }

// GenerateTopology builds a random tree per the spec; rng state determines
// the result (pass a *math/rand.Rand via topology.Generate for full
// control — this wrapper seeds from the spec for convenience).
var GenerateTopology = topology.Generate

// Canned topologies from the paper.
var (
	// Fig1Topology is the 12-node, 3-layer example of Fig. 1(a).
	Fig1Topology = topology.Fig1
	// Testbed50Topology is the 50-node, 5-hop testbed tree of Fig. 7(c).
	Testbed50Topology = topology.Testbed50
	// Deep81Topology is the 81-node, 10-layer tree of the §VII-B study.
	Deep81Topology = topology.Deep81
)

// Traffic constructors.
var (
	// NewTaskSet returns an empty task set.
	NewTaskSet = traffic.NewSet
	// UniformEcho builds one end-to-end echo task per node at the rate.
	UniformEcho = traffic.UniformEcho
	// ComputeDemand derives link-level cell requirements from tasks.
	ComputeDemand = traffic.Compute
	// PerLinkDemand builds direction-symmetric per-link demand without
	// convergecast accumulation (the §VII-A workload).
	PerLinkDemand = traffic.PerLink
)

// TestbedSlotframe returns the paper's testbed slotframe: 199 slots of
// 10 ms on 16 channels with a management sub-frame.
func TestbedSlotframe() Slotframe { return schedule.Testbed() }

// NewPlan runs HARP's static partition allocation over explicit demand.
var NewPlan = core.NewPlan

// NewSimulator builds a network simulator; install a schedule with
// SetSchedule and drive it with Run/RunSlotframes.
var NewSimulator = sim.New

// Network bundles a topology, its task set and the live HARP plan behind a
// task-level API: Build performs the static allocation, SetTaskRate applies
// a traffic change end to end (demand recomputation plus dynamic partition
// adjustment on every affected link).
type Network struct {
	Tree  *Tree
	Frame Slotframe
	Tasks *TaskSet
	Plan  *Plan
}

// Build runs the static partition allocation phase for the task set.
func Build(tree *Tree, frame Slotframe, tasks *TaskSet) (*Network, error) {
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(tree, frame, demand, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Network{Tree: tree, Frame: frame, Tasks: tasks, Plan: plan}, nil
}

// Schedule materialises the current collision-free network schedule.
func (n *Network) Schedule() (*Schedule, error) { return n.Plan.BuildSchedule() }

// Validate checks the partition-hierarchy and schedule invariants.
func (n *Network) Validate() error { return n.Plan.Validate() }

// SetTaskRate changes a task's packet rate and adjusts the schedule: the
// demand of every link on the task's path is recomputed and pushed through
// HARP's dynamic partition adjustment. The per-link adjustment reports are
// returned in path order (uplinks first).
func (n *Network) SetTaskRate(id TaskID, rate float64) ([]*Adjustment, error) {
	if err := n.Tasks.SetRate(id, rate); err != nil {
		return nil, err
	}
	demand, err := traffic.Compute(n.Tree, n.Tasks)
	if err != nil {
		return nil, err
	}
	var reports []*Adjustment
	for _, l := range demand.Links() {
		want := demand.Cells(l)
		if want == n.Plan.Demand(l) {
			continue
		}
		flows := demand.Flows(l)
		top := rate
		if len(flows) > 0 {
			top = flows[0].Task.Rate
		}
		adj, err := n.Plan.SetLinkDemand(l, want, top)
		if err != nil {
			return reports, err
		}
		if adj.Case == core.CaseRejected {
			return reports, fmt.Errorf("harp: network cannot host task %d at rate %.2f (link %v)", id, rate, l)
		}
		reports = append(reports, adj)
	}
	return reports, nil
}

// TotalMessages sums the HARP protocol messages across adjustment reports.
func TotalMessages(reports []*Adjustment) int {
	total := 0
	for _, r := range reports {
		total += r.TotalMessages()
	}
	return total
}

// TopologyAdjustment reports the cost of absorbing one parent switch.
type TopologyAdjustment = core.TopologyAdjustment

// ReparentNode absorbs a topology change: node (with its subtree) moves
// under newParent — the event RPL produces when a link degrades and a more
// reliable parent is selected. The task set is re-routed over the new tree
// and HARP migrates the affected partitions incrementally; see
// core.Plan.Reparent for the mechanics. On core.ErrReparentFailed the
// caller should rebuild with Build.
func (n *Network) ReparentNode(node, newParent NodeID) (*TopologyAdjustment, error) {
	clone := n.Tree.Clone()
	if err := clone.Reparent(node, newParent); err != nil {
		return nil, err
	}
	demand, err := traffic.Compute(clone, n.Tasks)
	if err != nil {
		return nil, err
	}
	cells := make(map[Link]int)
	rates := make(map[Link]float64)
	for _, l := range demand.Links() {
		cells[l] = demand.Cells(l)
		flows := demand.Flows(l)
		if len(flows) > 0 {
			rates[l] = flows[0].Task.Rate
		}
	}
	return n.Plan.Reparent(node, newParent, cells, rates)
}
