// Testbed50 runs HARP as a genuinely distributed system: fifty protocol
// agents — one goroutine per network node — execute the static partition
// allocation and a dynamic adjustment by exchanging CoAP messages (Table I
// of the paper) over a concurrent in-memory transport. The resulting
// global schedule is then verified collision-free and simulated to produce
// the per-node latency profile of Fig. 9.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/harpnet/harp/internal/agent"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/sim"
	"github.com/harpnet/harp/internal/stats"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
	"github.com/harpnet/harp/internal/transport"
)

func main() {
	tree := topology.Testbed50()
	frame := schedule.Testbed()
	tasks, err := traffic.UniformEcho(tree, 1) // 2-second period per node
	if err != nil {
		log.Fatal(err)
	}
	demand, err := traffic.Compute(tree, tasks)
	if err != nil {
		log.Fatal(err)
	}
	// Provision one spare cell per link beyond the task demand, so channel
	// losses can be retransmitted without building unbounded backlog.
	cells := make(map[topology.Link]int)
	for _, l := range demand.Links() {
		cells[l] = demand.Cells(l) + 1
	}
	provisioned := traffic.FromCells(cells)

	// One goroutine per node, channels in between.
	live := transport.NewLive()
	defer live.Close()
	// No root gap here: the spare cells already consume most of the data
	// sub-frame's headroom (188 of 190 slots).
	fleet, err := agent.Deploy(tree, frame, provisioned, live)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fleet.Start()
	if !live.WaitIdle(10 * time.Second) {
		log.Fatal("static phase did not converge")
	}
	fmt.Printf("static partition allocation converged: %d messages in %v (wall clock)\n",
		live.Delivered.Load(), time.Since(start).Round(time.Millisecond))

	if n := fleet.Rejections(); n > 0 {
		log.Fatalf("%d allocation rejections: demand does not fit the slotframe", n)
	}
	if err := fleet.Validate(); err != nil {
		log.Fatalf("distributed schedule invalid: %v", err)
	}
	fmt.Println("distributed schedule verified collision-free and half-duplex clean")

	// A runtime traffic change, requested by the affected node itself
	// (PUT /intf up the tree, per the paper's flowchart).
	before := live.Delivered.Load()
	if err := fleet.RequestLinkDemand(topology.Link{Child: 15, Direction: topology.Uplink}, 4); err != nil {
		log.Fatal(err)
	}
	if !live.WaitIdle(10 * time.Second) {
		log.Fatal("adjustment did not converge")
	}
	if err := fleet.Validate(); err != nil {
		log.Fatalf("schedule invalid after adjustment: %v", err)
	}
	fmt.Printf("node 15 uplink demand -> 4 cells: adjusted with %d messages, still conflict-free\n\n",
		live.Delivered.Load()-before)

	// Simulate the agents' schedule for five minutes of operation.
	sched, err := fleet.BuildSchedule()
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := sim.New(sim.Config{Tree: tree, Frame: frame, Tasks: tasks, PDR: 0.99, MaxRetries: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	simulator.SetSchedule(sched)
	if err := simulator.RunSlotframes(int(5 * time.Minute / frame.Duration())); err != nil {
		log.Fatal(err)
	}

	latencies := simulator.LatenciesByTask()
	table := stats.NewTable("per-layer end-to-end latency (5 simulated minutes, PDR 0.99)",
		"layer", "nodes", "mean(s)", "p95(s)")
	slotSec := frame.SlotDuration.Seconds()
	for layer := 1; layer <= tree.MaxLayer(); layer++ {
		var all []float64
		nodes := 0
		for _, id := range tree.NodesAtDepth(layer) {
			nodes++
			for _, l := range latencies[traffic.TaskID(id)] {
				all = append(all, l*slotSec)
			}
		}
		sum := stats.Summarize(all)
		table.AddRow(layer, nodes, sum.Mean, sum.P95)
	}
	fmt.Println(table)
	fmt.Printf("slotframe is %.2fs — mean latency stays bounded by it at every layer (Fig. 9)\n",
		frame.Duration().Seconds())
}
