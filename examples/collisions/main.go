// Collisions compares the four schedulers of the paper's §VII-A study —
// random, MSF, LDSF and HARP — on one random 50-node network, printing the
// schedule collision probability and then *simulating* each schedule so the
// collision numbers turn into concrete delivery-rate and latency damage.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/schedulers"
	"github.com/harpnet/harp/internal/sim"
	"github.com/harpnet/harp/internal/stats"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
)

func main() {
	const (
		rate       = 3.0
		seed       = 42
		slotframes = 30
	)
	rng := rand.New(rand.NewSource(seed))
	tree, err := topology.Generate(topology.GenSpec{Nodes: 50, Layers: 5, MaxChildren: 3}, rng)
	if err != nil {
		log.Fatal(err)
	}
	frame := schedule.Slotframe{Slots: 199, Channels: 16, DataSlots: 199, SlotDuration: 10_000_000}
	demand, err := traffic.PerLink(tree, rate)
	if err != nil {
		log.Fatal(err)
	}
	// A matching task set for the simulator: per-link demand corresponds to
	// single-hop traffic, so simulate echo tasks at the same rate for the
	// latency comparison.
	tasks, err := traffic.UniformEcho(tree, 1)
	if err != nil {
		log.Fatal(err)
	}
	simDemand, err := traffic.Compute(tree, tasks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random 50-node, 5-layer network; per-link demand %.0f cells (%d total)\n\n", rate, demand.TotalCells())
	table := stats.NewTable("scheduler comparison",
		"scheduler", "collision prob", "delivery rate", "mean latency(s)", "p95 latency(s)")

	for _, sched := range schedulers.All() {
		srng := rand.New(rand.NewSource(seed))
		s, err := sched.Build(tree, frame, demand, srng)
		if err != nil {
			log.Fatalf("%s: %v", sched.Name(), err)
		}
		collisions, err := schedulers.AnalyzeCollisions(tree, s)
		if err != nil {
			log.Fatal(err)
		}
		// Simulate the same scheduler on the echo workload.
		simSched, err := sched.Build(tree, frame, simDemand, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		simulator, err := sim.New(sim.Config{Tree: tree, Frame: frame, Tasks: tasks, PDR: 1, Seed: seed, MaxRetries: 8})
		if err != nil {
			log.Fatal(err)
		}
		simulator.SetSchedule(simSched)
		if err := simulator.RunSlotframes(slotframes); err != nil {
			log.Fatal(err)
		}
		delivered, generated := 0, 0
		var latencies []float64
		for _, r := range simulator.Records() {
			generated++
			if r.Delivered {
				delivered++
				latencies = append(latencies, float64(r.Latency())*frame.SlotDuration.Seconds())
			}
		}
		sum := stats.Summarize(latencies)
		table.AddRow(sched.Name(), collisions.Probability(),
			float64(delivered)/float64(generated), sum.Mean, sum.P95)
	}
	fmt.Println(table)
	fmt.Println("HARP's dedicated per-link partitions keep the collision probability at zero,")
	fmt.Println("which is what preserves both delivery rate and latency under load (Fig. 11).")
}
