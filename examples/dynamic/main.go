// Dynamic reproduces the paper's Fig. 10 scenario end to end: the 50-node
// testbed network runs steadily at one packet per slotframe; the observed
// node's sampling rate is raised twice during the run. The first increase
// is absorbed by idle cells in the local partition; the second overflows it
// and triggers a multi-hop partition adjustment, visible as a latency spike
// that settles once the reconfigured schedule is installed.
//
// The run is a co-simulation: the distributed agents exchange real CoAP
// messages over management cells on the same virtual clock the MAC steps
// on, so the disruption window printed per event is the measured gap
// between the rate step and the slot the protocol committed the new
// schedule (compare the analytic model's estimate with -analytic).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/harpnet/harp/internal/experiments"
)

func main() {
	analytic := flag.Bool("analytic", false, "use the analytic delay-model ablation instead of the measured co-simulation")
	flag.Parse()

	cfg := experiments.DefaultFig10()
	cfg.Analytic = *analytic
	mode := "co-simulated (measured commit slots)"
	if cfg.Analytic {
		mode = "analytic ablation (modelled delay)"
	}
	fmt.Printf("observing node %d: rate 1 -> %.1f (t=%ds) -> %.1f (t=%ds) pkt/slotframe — %s\n\n",
		cfg.Node,
		cfg.Step1Rate, cfg.Step1At*199/100,
		cfg.Step2Rate, cfg.Step2At*199/100,
		mode)

	res, err := experiments.Fig10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Events {
		fmt.Printf("t=%6.1fs  rate -> %.1f  handled as %-16s  %2d HARP msgs, %2d schedule msgs, settled in %.1fs",
			e.AtSec, e.Rate, e.Case, e.Messages, e.SchedMsgs, e.DelaySec)
		if e.Measured && e.CommitSlot >= 0 {
			fmt.Printf(" (committed at slot %d)", e.CommitSlot)
		}
		fmt.Println()
	}
	fmt.Println()

	// A coarse character plot of the latency trace (x: time, y: latency).
	const width, height = 100, 14
	maxT := res.Points[len(res.Points)-1].X
	maxL := res.MaxLatencySec * 1.05
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, p := range res.Points {
		x := int(p.X / maxT * float64(width-1))
		y := int(p.Y / maxL * float64(height-1))
		grid[height-1-y][x] = '*'
	}
	fmt.Printf("end-to-end latency of node %d (max %.2fs, one slotframe = 1.99s):\n", cfg.Node, res.MaxLatencySec)
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
	fmt.Printf("0s%stime%s%.0fs\n", spaces(width/2-4), spaces(width/2-6), maxT)
}

func spaces(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = ' '
	}
	return string(out)
}
