// Quickstart walks through HARP on the paper's Fig. 1 example: a 12-node,
// 3-layer industrial wireless network with one periodic end-to-end task per
// node. It builds the hierarchical partition allocation, prints the
// resource interfaces, the partition hierarchy and the resulting
// collision-free schedule, and finishes with a traffic change handled by
// the dynamic partition adjustment.
package main

import (
	"fmt"
	"log"

	"github.com/harpnet/harp"
)

func main() {
	// The Fig. 1(a) topology: gateway 0 with children 1..3; subtrees under
	// 1 and 3 reach layer 3.
	tree := harp.Fig1Topology()
	fmt.Println("topology (gateway first, children indented):")
	fmt.Println(tree)

	// One end-to-end echo task per node, one packet per slotframe.
	tasks, err := harp.UniformEcho(tree, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Static partition allocation (paper §IV): bottom-up interface
	// generation, top-down partition allocation, distributed RM scheduling.
	nw, err := harp.Build(tree, harp.TestbedSlotframe(), tasks)
	if err != nil {
		log.Fatal(err)
	}

	// The resource interfaces each subtree root reported (Definition 2).
	fmt.Println("resource interfaces (uplink):")
	for _, id := range []harp.NodeID{5, 1, harp.GatewayID} {
		iface, ok := nw.Plan.InterfaceOf(id, harp.Uplink)
		if ok {
			fmt.Printf("  %v\n", iface)
		}
	}
	fmt.Println()

	// The partition hierarchy: every subtree owns a dedicated rectangle of
	// (slot x channel) cells per layer.
	fmt.Println("partitions (uplink):")
	for _, info := range nw.Plan.Partitions() {
		if info.Direction != harp.Uplink {
			continue
		}
		fmt.Printf("  node %2d layer %d: %v\n", info.Node, info.Layer, info.Region)
	}
	fmt.Println()

	// The schedule is collision-free and half-duplex clean by construction.
	sched, err := nw.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Validate(tree); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	fmt.Printf("schedule: %d cells assigned, collision-free verified\n\n", sched.TotalCells())

	// A traffic change: node 8 triples its sampling rate. HARP adjusts
	// partitions along the affected path only.
	reports, err := nw.SetTaskRate(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 8 rate 1 -> 3 pkt/slotframe:")
	for _, r := range reports {
		fmt.Printf("  %s: %d request msgs, %d partition msgs, %d schedule msgs (climbed %d layers)\n",
			r.Case, r.RequestMessages, r.PartitionMessages, r.ScheduleMessages, r.LayersClimbed)
	}
	if err := nw.Validate(); err != nil {
		log.Fatalf("invalid after adjustment: %v", err)
	}
	fmt.Println("schedule still collision-free after adjustment")
}
