// Churn demonstrates HARP absorbing *topology* dynamics (§V of the paper):
// RPL-lite forms the routing tree over a link-quality graph; interference
// degrades links, RPL switches parents, and HARP migrates the affected
// subtrees' partitions incrementally — a handful of messages instead of
// re-running the whole static allocation.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"github.com/harpnet/harp/internal/core"
	"github.com/harpnet/harp/internal/rpl"
	"github.com/harpnet/harp/internal/schedule"
	"github.com/harpnet/harp/internal/topology"
	"github.com/harpnet/harp/internal/traffic"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A 40-node network in a unit square; nodes within radio range share a
	// link whose ETX grows with distance.
	graph, err := rpl.RandomGeometric(40, 0.3, rng)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := graph.FormTree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RPL formed a %d-node tree with %d layers\n", tree.Len(), tree.MaxLayer())

	frame := schedule.Slotframe{Slots: 800, Channels: 16, DataSlots: 800, SlotDuration: 10_000_000}
	demand := func(over *topology.Tree) (map[topology.Link]int, map[topology.Link]float64) {
		tasks, err := traffic.UniformEcho(over, 1)
		if err != nil {
			log.Fatal(err)
		}
		d, err := traffic.Compute(over, tasks)
		if err != nil {
			log.Fatal(err)
		}
		cells := make(map[topology.Link]int)
		rates := make(map[topology.Link]float64)
		for _, l := range d.Links() {
			cells[l] = d.Cells(l)
			rates[l] = 1
		}
		return cells, rates
	}
	cells, rates := demand(tree)
	plan, err := core.NewPlanFromLinkDemand(tree, frame, cells, rates, core.Options{RootGap: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static allocation done (%d protocol messages); schedule is collision-free\n\n",
		plan.Static.Total())

	for event := 1; event <= 6; event++ {
		// Interference hits a random node's tree link.
		nodes := tree.Nodes()
		victim := nodes[1+rng.Intn(len(nodes)-1)]
		parent, _ := tree.Parent(victim)
		if err := graph.Degrade(victim, parent, 8); err != nil {
			continue
		}
		shadow := tree.Clone()
		switches, err := graph.Reconverge(shadow)
		if err != nil {
			log.Fatal(err)
		}
		if len(switches) == 0 {
			fmt.Printf("event %d: link %d-%d degraded; RPL keeps the tree\n", event, victim, parent)
			continue
		}
		for _, sw := range switches {
			clone := tree.Clone()
			if clone.Reparent(sw.Node, sw.To) != nil {
				continue
			}
			// Demand over the post-switch routes.
			newCells, newRates := demand(clone)

			rep, err := plan.Reparent(sw.Node, sw.To, newCells, newRates)
			if errors.Is(err, core.ErrReparentFailed) {
				fmt.Printf("event %d: node %d -> %d could not migrate incrementally; rebuilding\n",
					event, sw.Node, sw.To)
				plan, err = core.NewPlanFromLinkDemand(tree, frame, newCells, newRates, core.Options{RootGap: 2})
				if err != nil {
					log.Fatal(err)
				}
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := plan.Validate(); err != nil {
				log.Fatalf("schedule invalid after migration: %v", err)
			}
			fmt.Printf("event %d: node %d switched parent %d -> %d; HARP migrated the subtree with %d messages (still collision-free)\n",
				event, sw.Node, sw.From, sw.To, rep.TotalMessages())
		}
	}
	fmt.Printf("\nfor comparison, one full static re-allocation costs %d messages\n", plan.Static.Total())
}
